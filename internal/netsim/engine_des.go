package netsim

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/radio"
)

// This file is the event-driven half of the engine seam: a Network
// bound to a des.Scheduler (NewDES) has no per-connection pump
// goroutines and no shared sweeper goroutine. Send draws the message's
// fate immediately and schedules a delivery event at the instant the
// modeled transfer completes; the link sweep is a self-rescheduling
// event; broadcast fan-out and dial setup ride the scheduler's Clock.
// The goroutine engine (conn.go pump, sweepLinks) is untouched and
// remains the differential oracle at small n — the simtest suite holds
// the two engines to identical delivered bytes, fault counters and
// group membership.
//
// Semantics preserved relative to the pump:
//   - per-direction messages deliver in msgSeq order (a receive-side
//     sequence gate, so even clamped event times cannot reorder);
//   - airtime is serialized per (device, technology): each message's
//     transmission starts when the radio frees, holding it for
//     (1+retransmits) x transfer — the event-time ledger equivalent of
//     the pump's txLock;
//   - admission backpressure: at most sendQueueLen messages in flight
//     per direction (the sendQ capacity), with the receive queue
//     buffering another sendQueueLen, so Send blocks at the same
//     outstanding-unread depth as the goroutine engine;
//   - fate order per message: retransmit accounting, reset, delay,
//     corruption, link recheck, delivery — byte-for-byte the pump's.
const (
	// desFlushRetry is the modeled pause before a delivery parked on a
	// full receive queue retries; the goroutine pump blocks on the
	// queue directly, an event must poll.
	desFlushRetry = time.Millisecond
)

// sweepHome is the scheduling home of the link-sweep event chain.
const sweepHome uint64 = 0x736e732d7377656570 >> 8 // "ns-sweep"

// homeOf maps a device to a stable 64-bit scheduling home, so all
// deliveries toward one device land on one shard in a deterministic
// spot that never depends on shard count.
func homeOf(dev ids.DeviceID) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(dev))
	return h.Sum64()
}

// desMsg is one in-flight message in the event engine.
type desMsg struct {
	seq     uint64
	payload []byte
	fate    faults.Fate
	plan    *faults.Plan
}

// desConnState is one conn end's event-engine state. The send side
// (msgSeq, dirFree, slots) covers messages this end transmits; the
// receive side (nextRecv, early, rbuf) keeps arrivals from the peer in
// msgSeq order and parks them when the receive queue is full.
type desConnState struct {
	// slots is the admission semaphore: sending pushes a token
	// (blocking at sendQueueLen in flight), delivery/drop pops it.
	slots chan struct{}

	mu     sync.Mutex
	msgSeq uint64
	// dirFree is the virtual instant (scheduler ns) when this
	// direction's latest delivery lands; later messages never deliver
	// at or before it, so the serial-pipeline shape of the pump holds.
	dirFree int64

	nextRecv uint64
	early    map[uint64]*desMsg
	rbuf     []*desMsg
	armed    bool // a flush retry event is scheduled

	// waiter is the parked RecvEvent continuation (events.go), invoked
	// by the delivery or teardown event that produces its outcome; nil
	// when no event receive is outstanding.
	waiter recvFn
}

// reset prepares this end's event state for a new pair incarnation.
// The admission semaphore and reorder map are allocated once and
// survive recycling; fresh marks a pair that has never been through
// the pool.
func (d *desConnState) reset(fresh bool) {
	if fresh {
		d.slots = make(chan struct{}, sendQueueLen)
		d.early = make(map[uint64]*desMsg)
	}
	d.msgSeq = 0
	d.dirFree = 0
	d.nextRecv = 1
	d.rbuf = d.rbuf[:0]
	d.armed = false
	d.waiter = nil
}

// drain empties the recyclable state at pair recycle time. No holder
// is left (refs hit zero), so plain access is safe.
func (d *desConnState) drain() {
	for len(d.slots) > 0 {
		<-d.slots
	}
	for k := range d.early {
		delete(d.early, k)
	}
	d.rbuf = d.rbuf[:0]
	d.waiter = nil
}

// desAirFree advances the (device, technology) airtime ledger: the
// returned start is when the radio frees (or now, if idle), and the
// radio is then held for busy beyond it.
func (n *Network) desAirFree(dev ids.DeviceID, tech radio.Technology, now int64, busy time.Duration) (start int64) {
	key := txKey{dev: dev, tech: tech}
	n.airMu.Lock()
	defer n.airMu.Unlock()
	start = n.airFree[key]
	if start < now {
		start = now
	}
	n.airFree[key] = start + int64(busy)
	return start
}

// desSend is the event engine's Send/SendDeadline: admission against
// the in-flight semaphore, an immediate fate draw, and one delivery
// event at the instant the modeled transfer completes.
func (c *Conn) desSend(payload []byte, deadline <-chan time.Time, cancel <-chan struct{}) error {
	sched := c.net.sched
	sched.Bump()
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return c.errOrClosed()
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return c.errOrClosed()
	default:
	}
	c.mu.Unlock()

	// Admission: the fast path takes a free slot without parking; the
	// slow path parks until delivery frees one, the conn dies, or the
	// deadline fires — the same outcomes a full sendQ gives the
	// goroutine engine.
	select {
	case c.des.slots <- struct{}{}:
	default:
		select {
		case c.des.slots <- struct{}{}:
		case <-c.closed:
			return c.errOrClosed()
		case <-deadline:
			return ErrSendTimeout
		case <-cancel:
			return ErrSendTimeout
		}
	}
	c.desLaunch(msg, sched.At)
	return nil
}

// desLaunch draws an admitted message's fate, advances the airtime and
// per-direction delivery ledgers, and schedules the delivery event
// through at — Scheduler.At for live-goroutine senders, Ctx.At for
// event senders (which keys the delivery from the calling event, so
// pure event-driver cascades replay byte-for-byte).
func (c *Conn) desLaunch(msg []byte, at func(d time.Duration, home uint64, fn func(ctx *des.Ctx))) {
	env := c.net.env
	scale := env.Scale()
	phy := env.PHY(c.tech)
	plan := c.net.faultPlan()
	transfer := phy.TransferTime(len(msg))
	var fate faults.Fate
	var stall time.Duration

	d := c.des
	d.mu.Lock()
	d.msgSeq++
	seq := d.msgSeq
	if plan != nil {
		elapsed := env.Elapsed()
		transfer = plan.ScaleTransfer(transfer, elapsed)
		fate = plan.MessageFate(c.local, c.remote, c.connSeq, seq, elapsed)
		if plan.AffectsEndpoints() {
			transfer = time.Duration(float64(transfer) * plan.ServeScale(c.local, elapsed))
			stall = plan.StallDelay(c.local, c.remote, c.connSeq, seq, elapsed)
		}
	}
	charges := time.Duration(1 + fate.Retransmits)
	busy := charges * scale.ToReal(transfer)
	now := c.net.sched.NowNS()
	// The pump's shape: stall first (not holding the radio), then the
	// radio for every charge, then the fate's extra delay.
	ready := now + int64(scale.ToReal(stall))
	txStart := c.net.desAirFree(c.local, c.tech, ready, busy)
	deliverAt := txStart + int64(busy) + int64(scale.ToReal(fate.Delay))
	if deliverAt <= d.dirFree {
		deliverAt = d.dirFree + 1
	}
	d.dirFree = deliverAt
	d.mu.Unlock()

	c.pending.Add(1)
	m := &desMsg{seq: seq, payload: msg, fate: fate, plan: plan}
	c.pair.ref() // the delivery event holds the pair until it runs
	at(time.Duration(deliverAt-now), homeOf(c.remote), func(ctx *des.Ctx) {
		defer c.unref()
		c.desDeliver(ctx, m)
	})
}

// desRelease returns one message's admission: the sender's pending
// count and in-flight slot.
func (c *Conn) desRelease() {
	c.pending.Done()
	<-c.des.slots
}

// desDeliver is the delivery event for one message this end sent: it
// applies the drawn fate in the pump's exact order and hands the
// payload to the peer's ordered receive path.
func (c *Conn) desDeliver(ctx *des.Ctx, m *desMsg) {
	n := c.net
	n.sched.Bump()
	if !c.Alive() {
		c.desAbandon()
		return
	}
	if m.fate.Retransmits > 0 {
		n.counters.messagesRetransmitted.Add(uint64(m.fate.Retransmits))
	}
	if m.fate.Reset {
		c.desAbandon()
		n.counters.linkFailures.Add(1)
		c.desTeardown(ctx, fmt.Errorf("%w: %s -> %s over %v (retransmission budget exhausted)", ErrLinkLost, c.local, c.remote, c.tech))
		return
	}
	if m.fate.Corrupt {
		m.payload = m.plan.Corrupt(m.payload, c.local, c.remote, c.connSeq, m.seq)
		n.counters.messagesCorrupted.Add(1)
	}
	if !n.linkUp(c.local, c.remote, c.tech) {
		c.desAbandon()
		n.counters.linkFailures.Add(1)
		c.desTeardown(ctx, fmt.Errorf("%w: %s -> %s over %v", ErrLinkLost, c.local, c.remote, c.tech))
		return
	}
	p := c.peer
	p.des.mu.Lock()
	if m.seq != p.des.nextRecv {
		// A clamped event time let this message outrun an earlier one:
		// park it; the sequence gate delivers it in order.
		p.des.early[m.seq] = m
		p.des.mu.Unlock()
		return
	}
	p.des.enqueueLocked(m)
	arm := p.desFlushLocked() && !p.des.armed
	if arm {
		p.des.armed = true
	}
	fn, payload, ok := p.desPopWaiterLocked()
	p.des.mu.Unlock()
	if arm {
		p.pair.ref()
		ctx.At(n.env.Scale().ToReal(desFlushRetry), homeOf(c.remote), p.desFlushEventRef)
	}
	if ok {
		fn(ctx, payload, nil)
	}
}

// desPopWaiterLocked pairs the armed RecvEvent waiter with the next
// queued payload; both must exist. Callers hold des.mu and invoke the
// returned continuation after unlocking. This event runs on
// homeOf(receiver) — the same home every delivery to this end uses —
// so waiter hand-off order is the event order, not a race.
func (c *Conn) desPopWaiterLocked() (recvFn, []byte, bool) {
	if c.des.waiter == nil {
		return nil, nil, false
	}
	select {
	case msg := <-c.recvQ:
		fn := c.des.waiter
		c.des.waiter = nil
		return fn, msg, true
	default:
		return nil, nil, false
	}
}

// desTeardown fails both ends from inside an event: armed RecvEvent
// waiters are popped first and their error callbacks scheduled as
// children of this event — keyed by the cascade, not the global
// counter, so event-driver teardown replays byte-for-byte. The
// callback drains any already-delivered message before reporting the
// close, matching Recv's drain-after-close.
func (c *Conn) desTeardown(ctx *des.Ctx, err error) {
	ends := [2]*Conn{c, c.peer}
	var fns [2]recvFn
	for i, e := range ends {
		e.des.mu.Lock()
		fns[i] = e.des.waiter
		e.des.waiter = nil
		e.des.mu.Unlock()
	}
	c.failBoth(err)
	for i, fn := range fns {
		if fn == nil {
			continue
		}
		e, fn := ends[i], fn
		e.pair.ref()
		ctx.At(0, homeOf(e.local), func(ctx *des.Ctx) {
			defer e.unref()
			select {
			case msg := <-e.recvQ:
				fn(ctx, msg, nil)
			default:
				fn(ctx, nil, e.errOrClosed())
			}
		})
	}
}

// desNotifyWaiter is the fail-path hook for conn deaths that happen
// outside any event (network close, abort, the goroutine-driver
// oracle): it schedules the armed waiter's error callback through the
// global counter. Event-path teardown (desTeardown) pops the waiter
// first, so this never double-fires.
func (c *Conn) desNotifyWaiter() {
	c.des.mu.Lock()
	fn := c.des.waiter
	c.des.waiter = nil
	c.des.mu.Unlock()
	if fn == nil {
		return
	}
	c.pair.ref()
	c.net.sched.At(0, homeOf(c.local), func(ctx *des.Ctx) {
		defer c.unref()
		select {
		case msg := <-c.recvQ:
			fn(ctx, msg, nil)
		default:
			fn(ctx, nil, c.errOrClosed())
		}
	})
}

// enqueueLocked appends an in-sequence arrival and pulls any parked
// successors after it. Callers hold des.mu.
func (d *desConnState) enqueueLocked(m *desMsg) {
	d.rbuf = append(d.rbuf, m)
	d.nextRecv++
	for {
		next, ok := d.early[d.nextRecv]
		if !ok {
			return
		}
		delete(d.early, d.nextRecv)
		d.rbuf = append(d.rbuf, next)
		d.nextRecv++
	}
}

// desFlushLocked moves parked arrivals into the receive queue while
// there is room, charging the delivery counters and returning the
// sender's admission per message — the event-engine twin of the pump's
// recvQ handoff. It reports whether messages remain parked. Callers
// hold c.des.mu; c is the RECEIVING end (the messages came from
// c.peer).
func (c *Conn) desFlushLocked() bool {
	for len(c.des.rbuf) > 0 {
		m := c.des.rbuf[0]
		select {
		case c.recvQ <- m.payload:
		default:
			return true // receive queue full: retry event takes over
		}
		c.des.rbuf = c.des.rbuf[1:]
		c.net.counters.messagesDelivered.Add(1)
		c.net.counters.bytesDelivered.Add(uint64(len(m.payload)))
		c.peer.desRelease()
	}
	return false
}

// desFlushEvent retries parked deliveries; it re-arms itself while the
// backlog lasts and drains the backlog outright once the conn dies.
func (c *Conn) desFlushEvent(ctx *des.Ctx) {
	c.net.sched.Bump()
	if !c.Alive() {
		c.desDrainReceiver()
		return
	}
	c.des.mu.Lock()
	again := c.desFlushLocked()
	c.des.armed = again
	fn, payload, ok := c.desPopWaiterLocked()
	c.des.mu.Unlock()
	if again {
		c.pair.ref()
		ctx.At(c.net.env.Scale().ToReal(desFlushRetry), homeOf(c.local), c.desFlushEventRef)
	}
	if ok {
		fn(ctx, payload, nil)
	}
}

// desFlushEventRef runs desFlushEvent under the pair hold its
// scheduling site took; every flush-retry arm pairs ref() with this
// wrapper so a parked retry can never outlive its pair.
func (c *Conn) desFlushEventRef(ctx *des.Ctx) {
	defer c.unref()
	c.desFlushEvent(ctx)
}

// desAbandon drops the in-hand undeliverable message plus everything
// parked on the same direction, returning every admission so Close
// never waits on traffic that can no longer flow. c is the SENDING
// end.
func (c *Conn) desAbandon() {
	c.desRelease()
	c.peer.desDrainReceiver()
}

// desDrainReceiver clears this end's parked arrivals (in-order backlog
// and out-of-order waiters), returning each message's admission to the
// sending peer.
func (c *Conn) desDrainReceiver() {
	d := c.des
	d.mu.Lock()
	dropped := len(d.rbuf) + len(d.early)
	d.rbuf = nil
	for k := range d.early {
		delete(d.early, k)
	}
	d.mu.Unlock()
	for i := 0; i < dropped; i++ {
		c.peer.desRelease()
	}
}

// desSweepEvent is the event-engine link sweep: the same dead-link
// check as sweepLinks, re-arming itself every modeled
// linkCheckInterval and retiring when the network closes or the last
// connection dies (trackConn re-arms it for the next one).
func (n *Network) desSweepEvent(ctx *des.Ctx) {
	n.mu.Lock()
	if n.closed || len(n.conns) == 0 {
		n.sweeping = false
		n.mu.Unlock()
		return
	}
	live := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		// Holding the pair across the unlocked check below: a tracked
		// conn always has its user holds outstanding, so the ref can
		// never resurrect a recycled pair.
		c.pair.ref()
		live = append(live, c)
	}
	sortConnsDet(live)
	n.mu.Unlock()
	for _, c := range live {
		if !n.linkUp(c.local, c.remote, c.tech) {
			n.counters.linkFailures.Add(1)
			c.desTeardown(ctx, fmt.Errorf("%w: %s <-> %s over %v", ErrLinkLost, c.local, c.remote, c.tech))
		}
		c.unref()
	}
	ctx.At(n.sweepInterval(), sweepHome, n.desSweepEvent)
}

// sweepInterval is the real-scaled link-check period (shared with the
// goroutine sweeper's timer).
func (n *Network) sweepInterval() time.Duration {
	interval := n.env.Scale().ToReal(linkCheckInterval)
	if interval <= 0 {
		interval = time.Millisecond
	}
	return interval
}

// armSweepEvent schedules the first sweep after trackConn flips
// n.sweeping on an event-engine network.
func (n *Network) armSweepEvent() {
	n.sched.At(n.sweepInterval(), sweepHome, n.desSweepEvent)
}
