package netsim

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/radio"
)

// This file is the event-native transport API: non-blocking
// counterparts of Dial/Accept/Send/Recv/Close for callers that ARE
// events on the network's des.Scheduler, so a workload driver can be a
// self-rescheduling event cascade instead of a goroutine. Everything
// here schedules through Ctx.At — child keys derived from the calling
// event — so a pure event-driver workload replays byte-for-byte
// (trace-hash invariant across shard and worker counts), which the
// blocking API cannot promise because its Scheduler.At draws depend on
// live-goroutine interleaving. Counter parity with the blocking API is
// exact: the same dialsAttempted/connsEstablished/messagesDelivered/
// bytesDelivered accounting on the same code paths, which is what lets
// the goroutine-driver harness stay the differential oracle.
//
// Contract: an event caller must never block, so admission that would
// park a goroutine instead fails fast (ErrSendTimeout) and waiting is
// expressed as a parked callback (RecvEvent arms a waiter the delivery
// event invokes). One RecvEvent may be outstanding per conn end.

// recvFn is a RecvEvent continuation: exactly one of payload/err is
// meaningful.
type recvFn = func(ctx *des.Ctx, payload []byte, err error)

// ErrEventEngineOnly rejects event-API calls on a goroutine-engine
// network (no scheduler to ride).
var ErrEventEngineOnly = fmt.Errorf("netsim: event API requires the discrete-event engine")

// DeviceHome is the scheduling home the engine uses for a device —
// where deliveries toward it, its dial completions and its teardown
// callbacks run. Workload drivers should schedule their own events on
// it too: everything about one device then executes in event order on
// one shard, so driver state needs no locks.
func DeviceHome(dev ids.DeviceID) uint64 { return homeOf(dev) }

// DialEvent is Dial for event callers: it charges the PHY
// connection-setup time as a scheduled event instead of a clock wait
// and hands the dialer end to fn inside the completion event. Failures
// (unreachable, no listener, closed network) reach fn with a nil conn;
// pre-flight failures invoke fn synchronously. The listener side must
// have an AcceptEvent handler (or free Accept backlog) to take the
// peer end.
func (n *Network) DialEvent(ctx *des.Ctx, from, to ids.DeviceID, tech radio.Technology, port string, fn func(ctx *des.Ctx, c *Conn, err error)) {
	n.counters.dialsAttempted.Add(1)
	if n.sched == nil {
		fn(ctx, nil, ErrEventEngineOnly)
		return
	}
	if !tech.Valid() {
		fn(ctx, nil, fmt.Errorf("netsim: dial: invalid technology %v", tech))
		return
	}
	if !n.linkUp(from, to, tech) {
		fn(ctx, nil, fmt.Errorf("%w: %s -> %s over %v", ErrUnreachable, from, to, tech))
		return
	}
	setup := n.env.Scale().ToReal(n.env.PHY(tech).ConnectSetup)
	ctx.At(setup, homeOf(from), func(ctx *des.Ctx) {
		n.finishDialEvent(ctx, from, to, tech, port, fn)
	})
}

// finishDialEvent is the setup-complete half of DialEvent: link
// recheck (the peer may have walked away while paging), listener
// lookup, pair construction, accept handoff.
func (n *Network) finishDialEvent(ctx *des.Ctx, from, to ids.DeviceID, tech radio.Technology, port string, fn func(ctx *des.Ctx, c *Conn, err error)) {
	n.sched.Bump()
	if !n.linkUp(from, to, tech) {
		fn(ctx, nil, fmt.Errorf("%w: %s -> %s over %v (lost during setup)", ErrUnreachable, from, to, tech))
		return
	}
	n.mu.Lock()
	l, ok := n.listeners[portKey{dev: to, port: port}]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		fn(ctx, nil, ErrNetworkClosed)
		return
	}
	if !ok {
		fn(ctx, nil, fmt.Errorf("%w: %s on %s", ErrNoListener, port, to))
		return
	}
	local, remote := newConnPair(n, from, to, tech, port)
	accept := l.acceptHandler()
	if accept == nil {
		// No event handler: fall back to the Accept queue, but an event
		// cannot park on a full backlog the way Dial does.
		select {
		case l.incoming <- remote:
		default:
			local.Abort()
			remote.releaseUser() // never handed to an acceptor
			fn(ctx, nil, fmt.Errorf("%w: %s on %s (accept backlog full)", ErrNoListener, port, to))
			return
		}
		n.counters.connsEstablished.Add(1)
		fn(ctx, local, nil)
		return
	}
	n.counters.connsEstablished.Add(1)
	// The handler runs inside this event, before the dialer's
	// continuation, so the serving side (typically arming its first
	// RecvEvent) is in place before any message can be sent.
	accept(ctx, remote)
	fn(ctx, local, nil)
}

// AcceptEvent registers fn as the event-mode accept handler: every
// connection dialed to this listener through DialEvent is handed to fn
// synchronously inside the dial-completion event — the O(1) stand-in
// for an Accept loop plus per-conn handler goroutine. Do not mix with
// a concurrent Accept loop on the same listener.
func (l *Listener) AcceptEvent(fn func(ctx *des.Ctx, c *Conn)) {
	l.acceptMu.Lock()
	l.acceptFn = fn
	l.acceptMu.Unlock()
}

// acceptHandler returns the registered event-mode accept handler, or
// nil.
func (l *Listener) acceptHandler() func(ctx *des.Ctx, c *Conn) {
	l.acceptMu.Lock()
	defer l.acceptMu.Unlock()
	return l.acceptFn
}

// SendEvent is Send for event callers: same fate draw, airtime ledger
// and in-order delivery scheduling as Send, but the delivery event's
// key derives from the calling event (Ctx.At, replayable) and
// admission cannot park — a full in-flight window fails fast with
// ErrSendTimeout, the outcome a blocked Send would reach at its
// deadline. Event drivers that await delivery (RecvEvent) between
// sends never see it.
func (c *Conn) SendEvent(ctx *des.Ctx, payload []byte) error {
	if c.des == nil {
		return ErrEventEngineOnly
	}
	c.ops.Add(1)
	defer c.ops.Add(-1)
	c.net.sched.Bump()
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return c.errOrClosed()
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return c.errOrClosed()
	default:
	}
	c.mu.Unlock()
	select {
	case c.des.slots <- struct{}{}:
	default:
		return ErrSendTimeout
	}
	c.desLaunch(msg, ctx.At)
	return nil
}

// RecvEvent is Recv for event callers: it delivers the next in-order
// message to fn — immediately (inside this event) when one is queued,
// otherwise from the delivery event that produces it. A dead conn with
// nothing left queued reaches fn as an error. One RecvEvent may be
// outstanding per conn end; arming a second replaces the first.
func (c *Conn) RecvEvent(ctx *des.Ctx, fn recvFn) {
	if c.des == nil {
		fn(ctx, nil, ErrEventEngineOnly)
		return
	}
	c.ops.Add(1)
	defer c.ops.Add(-1)
	c.net.sched.Bump()
	d := c.des
	d.mu.Lock()
	c.desFlushLocked()
	select {
	case msg := <-c.recvQ:
		d.mu.Unlock()
		fn(ctx, msg, nil)
		return
	default:
	}
	if !c.Alive() {
		d.mu.Unlock()
		fn(ctx, nil, c.errOrClosed())
		return
	}
	d.waiter = fn
	d.mu.Unlock()
}

// desCloseRetries caps CloseEvent's flush polling at the modeled
// equivalent of closeFlushTimeout (retry interval desFlushRetry), the
// same bound Close puts on a peer that stops reading.
const desCloseRetries = int(closeFlushTimeout / desFlushRetry)

// CloseEvent is Close for event callers: it flushes messages this end
// has sent but the scheduler has not yet delivered — polling in
// modeled time instead of parking a goroutine on a WaitGroup — then
// fails both ends. Messages the peer has not read remain readable
// (RecvEvent drains them before reporting the close).
func (c *Conn) CloseEvent(ctx *des.Ctx) {
	if c.des == nil {
		_ = c.Close()
		return
	}
	if !c.released.CompareAndSwap(false, true) {
		return // duplicate release (see Close)
	}
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	// The user hold itself carries the flush chain until teardown.
	c.desCloseFlush(ctx, 0)
}

// desCloseFlush reschedules itself while this end's sent messages are
// still in flight, then tears the pair down and drops the user hold
// carried through the chain.
func (c *Conn) desCloseFlush(ctx *des.Ctx, tries int) {
	c.net.sched.Bump()
	if c.Alive() && len(c.des.slots) > 0 && tries < desCloseRetries {
		ctx.At(c.net.env.Scale().ToReal(desFlushRetry), homeOf(c.local), func(ctx *des.Ctx) {
			c.desCloseFlush(ctx, tries+1)
		})
		return
	}
	c.desTeardown(ctx, ErrConnClosed)
	c.unref()
}
