package netsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/radio"
)

// faultRun opens one connection pair under the given plan, streams a
// fixed message sequence serially, and returns what the receiver saw
// (payloads, in order) plus the terminal error, if any.
func faultRun(t *testing.T, plan *faults.Plan) (received [][]byte, sendErr error) {
	t.Helper()
	env, net := fastWorld(t)
	net.SetFaults(plan)
	addStatic(t, env, "fa", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "fb", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "fa", "fb", radio.Bluetooth, "svc")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 120; i++ {
		msg := []byte(fmt.Sprintf("frame-%03d|payload-%03d", i, i))
		if err := client.Send(msg); err != nil {
			return received, err
		}
		got, err := server.Recv(ctx)
		if err != nil {
			return received, err
		}
		received = append(received, got)
	}
	return received, nil
}

// Replaying a seed must reproduce the identical wire history: the same
// payload bytes (corruptions included) in the same order, the same
// terminal error, and the same fault-event trace.
func TestFaultReplayByteForByte(t *testing.T) {
	mkPlan := func() *faults.Plan {
		return faults.New(424242).SetLink(faults.LinkProfile{
			Loss:           0.25,
			MaxRetransmits: 6, // deep budget: degrade, don't reset, so both runs complete
			Corrupt:        0.15,
			ExtraLatency:   2 * time.Millisecond,
			Jitter:         3 * time.Millisecond,
		})
	}
	p1, p2 := mkPlan(), mkPlan()
	recv1, err1 := faultRun(t, p1)
	recv2, err2 := faultRun(t, p2)

	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("replay diverged on terminal error: %v vs %v", err1, err2)
	}
	if len(recv1) != len(recv2) {
		t.Fatalf("replay delivered %d vs %d messages", len(recv1), len(recv2))
	}
	for i := range recv1 {
		if !bytes.Equal(recv1[i], recv2[i]) {
			t.Fatalf("message %d diverged:\n  run1: %q\n  run2: %q", i, recv1[i], recv2[i])
		}
	}
	if !reflect.DeepEqual(p1.Events(), p2.Events()) {
		t.Fatalf("event traces diverged: %d vs %d events", len(p1.Events()), len(p2.Events()))
	}
	if p1.Counters() != p2.Counters() {
		t.Fatalf("fault counters diverged: %+v vs %+v", p1.Counters(), p2.Counters())
	}
	// The plan must actually have done something, or this test is vacuous.
	c := p1.Counters()
	if c.MessagesLost == 0 || c.MessagesCorrupted == 0 {
		t.Fatalf("plan injected nothing: %+v", c)
	}
	corrupted := 0
	for i, msg := range recv1 {
		if !bytes.Equal(msg, []byte(fmt.Sprintf("frame-%03d|payload-%03d", i, i))) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no corrupted payload reached the receiver at 15% corruption")
	}
}

// A zero-rate plan must be byte-identical to no plan at all: same
// delivered bytes, same network counters, nothing counted on the plan.
func TestZeroFaultPlanIsByteIdenticalToFaultFree(t *testing.T) {
	run := func(plan *faults.Plan) ([][]byte, Counters) {
		env, net := fastWorld(t)
		net.SetFaults(plan)
		addStatic(t, env, "za", geo.Pt(0, 0), radio.Bluetooth)
		addStatic(t, env, "zb", geo.Pt(5, 0), radio.Bluetooth)
		client, server := dialPair(t, net, "za", "zb", radio.Bluetooth, "svc")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var got [][]byte
		for i := 0; i < 60; i++ {
			msg := []byte(fmt.Sprintf("zf-%03d", i))
			if err := client.Send(msg); err != nil {
				t.Fatal(err)
			}
			m, err := server.Recv(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, m)
		}
		if n, err := net.SendBroadcast("za", radio.Bluetooth, "nobody", []byte("ping")); err != nil || n != 0 {
			t.Fatalf("broadcast: %d, %v", n, err)
		}
		return got, net.Counters()
	}

	zero := faults.New(7).SetLink(faults.LinkProfile{}).SetRadio(faults.RadioProfile{})
	plain, plainCounters := run(nil)
	zeroed, zeroCounters := run(zero)

	if !reflect.DeepEqual(plain, zeroed) {
		t.Fatal("zero-rate plan altered the delivered byte stream")
	}
	if plainCounters != zeroCounters {
		t.Fatalf("zero-rate plan altered counters:\n  plain: %+v\n  zero:  %+v", plainCounters, zeroCounters)
	}
	if zeroCounters.MessagesRetransmitted != 0 || zeroCounters.MessagesCorrupted != 0 {
		t.Fatalf("zero-rate plan charged fault counters: %+v", zeroCounters)
	}
	if c := zero.Counters(); c != (faults.Counters{}) {
		t.Fatalf("zero-rate plan counted activity: %+v", c)
	}
}

// A lossy plan with a shallow retransmission budget must eventually
// reset the link with ErrLinkLost — the signal RobustConn's failover
// consumes.
func TestFaultResetSurfacesAsLinkLost(t *testing.T) {
	plan := faults.New(99).SetLink(faults.LinkProfile{Loss: 0.7, MaxRetransmits: 1})
	_, err := faultRun(t, plan)
	if err == nil {
		t.Fatal("70% loss with budget 1 never reset the link over 120 messages")
	}
	if !errors.Is(err, ErrLinkLost) {
		t.Fatalf("reset surfaced as %v, want ErrLinkLost", err)
	}
	if plan.Counters().LinkResets == 0 {
		t.Fatal("reset not counted on the plan")
	}
}
