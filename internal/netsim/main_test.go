package netsim

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaves simulator goroutines
// (conn pumps, link watchdogs, proxy bridges) running: leaked pumps
// keep charging airtime and make subsequent timings load-dependent.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
