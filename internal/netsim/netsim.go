// Package netsim simulates the transport layer PeerHood's plugins use:
// reliable ordered message streams between devices in the radio
// environment, with per-technology latency and bandwidth, connection
// setup cost, link breakage when devices leave radio range, broadcast
// delivery for WLAN-style service discovery, and failure injection
// (partitions, broadcast loss) for robustness tests.
//
// A Conn is the moral equivalent of the L2CAP channel the thesis's
// BTPlugin offers ("ordered and reliable data delivery", §4.2.3): the
// network never reorders or corrupts messages, but it does sever the
// connection when the radio link dies.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/radio"
)

// Sentinel errors.
var (
	ErrUnreachable   = errors.New("netsim: peer unreachable")
	ErrNoListener    = errors.New("netsim: no listener on port")
	ErrPortInUse     = errors.New("netsim: port already in use")
	ErrConnClosed    = errors.New("netsim: connection closed")
	ErrLinkLost      = errors.New("netsim: radio link lost")
	ErrNetworkClosed = errors.New("netsim: network closed")
	ErrSendTimeout   = errors.New("netsim: send deadline exceeded")
)

// sendQueueLen bounds in-flight messages per direction; Send blocks
// when the queue is full, which models transmit-buffer backpressure.
const sendQueueLen = 256

// linkCheckInterval is the modeled interval at which the network's
// shared link sweep verifies the radio link under every established
// connection still holds, so idle connections notice separation too.
const linkCheckInterval = time.Second

// Network binds the transport to a radio environment.
type Network struct {
	env *radio.Environment

	mu          sync.Mutex
	listeners   map[portKey]*Listener
	subscribers map[portKey][]*BroadcastSub
	partitioned map[devPair]bool
	lossRate    float64
	rng         *rand.Rand
	closed      bool
	conns       map[*Conn]bool // one end per live pair, for sweep + Close teardown
	sweeping    bool           // a sweepLinks goroutine is running

	// sweepWake (capacity 1) nudges the link sweeper out of its timer
	// wait when the network closes or the last connection dies, so the
	// goroutine exits promptly even under a paused manual clock.
	sweepWake chan struct{}

	counters netCounters

	// plan is the installed fault-injection plan (nil = clean links).
	// Loaded lock-free on every message so the disabled path costs one
	// atomic read.
	plan atomic.Pointer[faults.Plan]

	// pairSeq numbers connections per directed (dialer, listener) pair;
	// the sequence plus a per-connection message index keys every
	// deterministic fault draw. Guarded by mu.
	pairSeq map[dirPair]uint64

	// txLocks serializes transmissions per (device, technology): a
	// radio is a shared medium, so two connections sending from the
	// same device over the same technology contend for airtime.
	txMu    sync.Mutex
	txLocks map[txKey]*sync.Mutex

	// sched selects the engine: nil runs the goroutine engine (conn
	// pumps + sweepLinks goroutine); non-nil runs the discrete-event
	// engine (engine_des.go), where sends schedule delivery events and
	// the sweep is a self-rescheduling event. Set once at construction,
	// never mutated.
	sched *des.Scheduler

	// airFree is the event engine's per-(device, technology) airtime
	// ledger — the virtual instant each radio frees — standing in for
	// txLocks, which serialize goroutines the event engine doesn't have.
	airMu   sync.Mutex
	airFree map[txKey]int64

	// pairPool recycles connPair allocations (conn.go): at scale the
	// dial/close churn of discovery rounds dominated the allocation
	// profile, and a pair's queues are engine-invariant, so a released
	// pair is reset rather than reallocated.
	pairPool sync.Pool
}

type txKey struct {
	dev  ids.DeviceID
	tech radio.Technology
}

// txLock returns the transmit mutex for a device radio.
func (n *Network) txLock(dev ids.DeviceID, tech radio.Technology) *sync.Mutex {
	n.txMu.Lock()
	defer n.txMu.Unlock()
	key := txKey{dev: dev, tech: tech}
	l, ok := n.txLocks[key]
	if !ok {
		l = &sync.Mutex{}
		n.txLocks[key] = l
	}
	return l
}

type portKey struct {
	dev  ids.DeviceID
	port string
}

type devPair struct {
	a, b ids.DeviceID
}

// dirPair is a direction-preserving device pair: connection sequence
// numbers are per dialing direction so that two peers dialing each
// other concurrently cannot perturb each other's fault draws.
type dirPair struct {
	from, to ids.DeviceID
}

func normPair(a, b ids.DeviceID) devPair {
	if a > b {
		a, b = b, a
	}
	return devPair{a: a, b: b}
}

// New returns a network over the given environment, on the goroutine
// engine.
func New(env *radio.Environment, seed int64) *Network {
	return &Network{
		env:         env,
		listeners:   make(map[portKey]*Listener),
		subscribers: make(map[portKey][]*BroadcastSub),
		partitioned: make(map[devPair]bool),
		rng:         rand.New(rand.NewSource(seed)),
		txLocks:     make(map[txKey]*sync.Mutex),
		conns:       make(map[*Conn]bool),
		sweepWake:   make(chan struct{}, 1),
		pairSeq:     make(map[dirPair]uint64),
	}
}

// NewDES returns a network driven by the given discrete-event
// scheduler instead of per-connection goroutines: same API, same
// semantics, but message transfers, fault fates and link sweeps are
// scheduled events, so virtual time advances by popping the event
// queue rather than sleeping. The environment must ride the same
// scheduler's clock (radio.WithClock(sched.Clock())), or transport
// events and radio time would disagree.
func NewDES(env *radio.Environment, seed int64, sched *des.Scheduler) *Network {
	n := New(env, seed)
	n.sched = sched
	n.airFree = make(map[txKey]int64)
	return n
}

// Scheduler returns the discrete-event scheduler driving this network,
// or nil on the goroutine engine.
func (n *Network) Scheduler() *des.Scheduler { return n.sched }

// SetFaults installs (or, with nil, removes) a fault-injection plan on
// the transport: message fates, bandwidth throttling and link flaps /
// scheduled partitions all come from the plan's deterministic draws.
// Radio-side inquiry faults are installed separately with
// Environment.SetInquiryFaults, since the same plan serves both hooks.
func (n *Network) SetFaults(p *faults.Plan) {
	if p == nil {
		n.plan.Store(nil)
		return
	}
	n.plan.Store(p)
}

// faultPlan returns the installed plan, or nil.
func (n *Network) faultPlan() *faults.Plan { return n.plan.Load() }

// sortConnsDet orders connections deterministically — by dialer pair,
// then connection sequence — so that shutdown and sweep failures hit
// conns in a stable order instead of whatever order the conns map
// yields this run. Failure order is observable (error delivery,
// deregistration events), so it must replay.
func sortConnsDet(conns []*Conn) {
	sort.Slice(conns, func(i, j int) bool {
		a, b := conns[i], conns[j]
		if a.local != b.local {
			return a.local < b.local
		}
		if a.remote != b.remote {
			return a.remote < b.remote
		}
		return a.connSeq < b.connSeq
	})
}

// nextConnSeq numbers a new connection on its directed dialer pair.
func (n *Network) nextConnSeq(from, to ids.DeviceID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := dirPair{from: from, to: to}
	n.pairSeq[key]++
	return n.pairSeq[key]
}

// ConnSeq reports how many connections have been dialed from one
// device to another so far; the next dial on the pair gets ConnSeq+1.
// Session-keyed fault draws (faults.Plan.SessionStalled) are pure in
// this number, so tests use it to pick seeds with known session fates.
func (n *Network) ConnSeq(from, to ids.DeviceID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pairSeq[dirPair{from: from, to: to}]
}

// Environment returns the underlying radio environment.
func (n *Network) Environment() *radio.Environment { return n.env }

// Close shuts the network down; existing connections break and new
// operations fail. Breaking the connections (not just the listeners)
// also stops their pump goroutines and the shared link sweeper, so a
// closed network leaves nothing running.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	for _, l := range n.listeners {
		l.closeLocked()
	}
	n.listeners = make(map[portKey]*Listener)
	live := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		// Hold each pair across the unlocked teardown below; a tracked
		// conn still has its user holds, so the ref is always live.
		c.pair.ref()
		live = append(live, c)
	}
	sortConnsDet(live)
	n.conns = make(map[*Conn]bool)
	n.kickSweeperLocked()
	n.mu.Unlock()
	// Outside the lock: failing a conn re-enters the network to
	// deregister itself.
	for _, c := range live {
		c.failBoth(ErrNetworkClosed)
		c.unref()
	}
}

// trackConn registers one end of a new pair for the link sweep and
// Close teardown, starting the sweeper if it is not already running.
func (n *Network) trackConn(c *Conn) {
	n.mu.Lock()
	n.conns[c] = true
	start := !n.sweeping && !n.closed
	if start {
		n.sweeping = true
	}
	n.mu.Unlock()
	if start {
		if n.sched != nil {
			n.armSweepEvent()
		} else {
			go n.sweepLinks()
		}
	}
}

// dropConn removes a dead conn from the registry; no-op for the
// untracked end of a pair. When the last conn goes, the sweeper is
// nudged so it can retire instead of idling on its timer.
func (n *Network) dropConn(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	if len(n.conns) == 0 {
		n.kickSweeperLocked()
	}
	n.mu.Unlock()
}

// kickSweeperLocked wakes the link sweeper without blocking; callers
// hold n.mu. The capacity-1 channel coalesces pending kicks.
func (n *Network) kickSweeperLocked() {
	select {
	case n.sweepWake <- struct{}{}:
	default:
	}
}

// sweepLinks is the shared link watchdog: a single goroutine per
// Network that, every modeled linkCheckInterval, checks the radio link
// under every live connection and fails the dead ones with ErrLinkLost
// — the O(1)-goroutine replacement for the per-connection watchdog
// tickers the simulator started out with, which capped it at tens of
// devices. It exits when the network closes or the last connection
// dies, and trackConn restarts it for the next connection.
func (n *Network) sweepLinks() {
	interval := n.env.Scale().ToReal(linkCheckInterval)
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		select {
		case <-n.env.Clock().After(interval):
		case <-n.sweepWake:
		}
		n.mu.Lock()
		if n.closed || len(n.conns) == 0 {
			n.sweeping = false
			n.mu.Unlock()
			return
		}
		live := make([]*Conn, 0, len(n.conns))
		for c := range n.conns {
			// Hold the pair across the unlocked check below: a tracked
			// conn always has its user holds outstanding, so the ref can
			// never resurrect a recycled pair.
			c.pair.ref()
			live = append(live, c)
		}
		sortConnsDet(live)
		n.mu.Unlock()
		// Outside the lock: linkUp re-enters n.mu and failing a conn
		// re-enters the network to deregister itself.
		for _, c := range live {
			if !n.linkUp(c.local, c.remote, c.tech) {
				n.counters.linkFailures.Add(1)
				c.failBoth(fmt.Errorf("%w: %s <-> %s over %v", ErrLinkLost, c.local, c.remote, c.tech))
			}
			c.unref()
		}
	}
}

// Partition severs all traffic between two devices regardless of radio
// range (failure injection).
func (n *Network) Partition(a, b ids.DeviceID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[normPair(a, b)] = true
}

// Heal removes a partition.
func (n *Network) Heal(a, b ids.DeviceID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, normPair(a, b))
}

// SetBroadcastLoss sets the probability in [0, 1] that any single
// broadcast delivery is dropped.
func (n *Network) SetBroadcastLoss(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.lossRate = rate
}

// linkUp reports whether traffic may flow between two devices now.
func (n *Network) linkUp(a, b ids.DeviceID, tech radio.Technology) bool {
	n.mu.Lock()
	part := n.partitioned[normPair(a, b)]
	closed := n.closed
	n.mu.Unlock()
	if closed || part {
		return false
	}
	if plan := n.faultPlan(); plan.SeversLinks() && plan.LinkDown(a, b, n.env.Elapsed()) {
		return false
	}
	return n.env.Reachable(a, b, tech)
}

// sleepModeled sleeps a modeled duration on the environment's clock,
// shrunk by its latency scale.
func (n *Network) sleepModeled(d time.Duration) {
	n.env.Clock().Sleep(n.env.Scale().ToReal(d))
}

// Listen opens a named port on a device. The returned listener accepts
// connections dialed to (dev, port) over any technology.
func (n *Network) Listen(dev ids.DeviceID, port string) (*Listener, error) {
	if !n.env.Has(dev) {
		return nil, fmt.Errorf("netsim: listen: %w: %q", radio.ErrUnknownDevice, dev)
	}
	if port == "" {
		return nil, errors.New("netsim: listen: empty port")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetworkClosed
	}
	key := portKey{dev: dev, port: port}
	if _, ok := n.listeners[key]; ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrPortInUse, port, dev)
	}
	l := &Listener{
		net:      n,
		key:      key,
		incoming: make(chan *Conn, 16),
		done:     make(chan struct{}),
	}
	n.listeners[key] = l
	return l, nil
}

// Dial connects from one device to a port on another over the given
// technology. It charges the PHY's connection-setup time and fails if
// the peer is unreachable or nothing is listening.
func (n *Network) Dial(ctx context.Context, from, to ids.DeviceID, tech radio.Technology, port string) (*Conn, error) {
	n.counters.dialsAttempted.Add(1)
	if !tech.Valid() {
		return nil, fmt.Errorf("netsim: dial: invalid technology %v", tech)
	}
	if !n.linkUp(from, to, tech) {
		return nil, fmt.Errorf("%w: %s -> %s over %v", ErrUnreachable, from, to, tech)
	}
	phy := n.env.PHY(tech)
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.env.Clock().After(n.env.Scale().ToReal(phy.ConnectSetup)):
	}
	// Re-check after setup: the peer may have walked away while paging.
	if !n.linkUp(from, to, tech) {
		return nil, fmt.Errorf("%w: %s -> %s over %v (lost during setup)", ErrUnreachable, from, to, tech)
	}
	n.mu.Lock()
	l, ok := n.listeners[portKey{dev: to, port: port}]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrNetworkClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoListener, port, to)
	}

	local, remote := newConnPair(n, from, to, tech, port)
	select {
	case l.incoming <- remote:
		n.counters.connsEstablished.Add(1)
	case <-l.done:
		_ = local.Close()
		remote.releaseUser() // never handed to an acceptor
		return nil, fmt.Errorf("%w: %s on %s", ErrNoListener, port, to)
	case <-ctx.Done():
		_ = local.Close()
		remote.releaseUser() // never handed to an acceptor
		return nil, ctx.Err()
	}
	return local, nil
}

// Listener accepts inbound connections on a device port.
type Listener struct {
	net      *Network
	key      portKey
	incoming chan *Conn
	done     chan struct{}
	once     sync.Once

	// acceptFn is the event-mode accept handler (AcceptEvent,
	// events.go); nil means inbound event dials use the Accept queue.
	acceptMu sync.Mutex
	acceptFn func(ctx *des.Ctx, c *Conn)
}

// Accept blocks until a connection arrives, the listener closes, or the
// context is done.
func (l *Listener) Accept(ctx context.Context) (*Conn, error) {
	select {
	case c := <-l.incoming:
		return c, nil
	case <-l.done:
		return nil, ErrConnClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Addr returns the device and port this listener is bound to.
func (l *Listener) Addr() (ids.DeviceID, string) { return l.key.dev, l.key.port }

// Close stops accepting; established connections are unaffected.
func (l *Listener) Close() {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	if l.net.listeners[l.key] == l {
		delete(l.net.listeners, l.key)
	}
	l.closeLocked()
}

func (l *Listener) closeLocked() {
	l.once.Do(func() { close(l.done) })
}
