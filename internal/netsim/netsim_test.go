package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// fastWorld builds an environment on the real clock with a tiny latency
// scale so modeled seconds pass in microseconds.
func fastWorld(t *testing.T) (*radio.Environment, *Network) {
	t.Helper()
	env := radio.NewEnvironment(WithTestScale())
	net := New(env, 1)
	t.Cleanup(net.Close)
	return env, net
}

// WithTestScale compresses modeled time 10000x so a 10 s inquiry runs
// in 1 ms of wall time.
func WithTestScale() radio.Option {
	return radio.WithScale(vtime.NewScale(1e-4))
}

func addStatic(t *testing.T, env *radio.Environment, id ids.DeviceID, at geo.Point, techs ...radio.Technology) {
	t.Helper()
	if err := env.Add(id, mobility.Static{At: at}, techs...); err != nil {
		t.Fatal(err)
	}
}

func dialPair(t *testing.T, net *Network, from, to ids.DeviceID, tech radio.Technology, port string) (*Conn, *Conn) {
	t.Helper()
	l, err := net.Listen(to, port)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	type res struct {
		c   *Conn
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		c, err := l.Accept(ctx)
		acceptCh <- res{c, err}
	}()
	dialer, err := net.Dial(ctx, from, to, tech, port)
	if err != nil {
		t.Fatal(err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dialer.Close() })
	return dialer, r.c
}

func TestDialAndExchange(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Recv = %q", got)
	}
	if err := server.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	back, err := client.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "world" {
		t.Fatalf("Recv = %q", back)
	}
}

func TestConnMetadata(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.WLAN)
	client, server := dialPair(t, net, "a", "b", radio.WLAN, "svc")
	if client.Local() != "a" || client.Remote() != "b" {
		t.Error("client metadata wrong")
	}
	if server.Local() != "b" || server.Remote() != "a" {
		t.Error("server metadata wrong")
	}
	if client.Technology() != radio.WLAN || client.Port() != "svc" {
		t.Error("tech/port metadata wrong")
	}
}

func TestMessagesArriveInOrder(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")

	const count = 100
	go func() {
		for i := 0; i < count; i++ {
			if err := client.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < count; i++ {
		got, err := server.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%03d", i); string(got) != want {
			t.Fatalf("out of order: got %q, want %q", got, want)
		}
	}
}

func TestDialUnreachable(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "far", geo.Pt(1000, 0), radio.Bluetooth)
	_, err := net.Dial(context.Background(), "a", "far", radio.Bluetooth, "svc")
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestDialNoListener(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	_, err := net.Dial(context.Background(), "a", "b", radio.Bluetooth, "nobody")
	if !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestDialInvalidTech(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	if _, err := net.Dial(context.Background(), "a", "a", radio.TechNone, "svc"); err == nil {
		t.Fatal("expected error for TechNone")
	}
}

func TestListenErrors(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	if _, err := net.Listen("ghost", "svc"); err == nil {
		t.Error("listen on unknown device should fail")
	}
	if _, err := net.Listen("a", ""); err == nil {
		t.Error("empty port should fail")
	}
	l, err := net.Listen("a", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := net.Listen("a", "svc"); !errors.Is(err, ErrPortInUse) {
		t.Errorf("err = %v, want ErrPortInUse", err)
	}
}

func TestListenerCloseFreesPort(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	l, err := net.Listen("a", "svc")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := net.Listen("a", "svc")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
}

func TestLinkLostWhenPeerWalksAway(t *testing.T) {
	env := radio.NewEnvironment(WithTestScale())
	net := New(env, 1)
	defer net.Close()
	addStatic(t, env, "fixed", geo.Pt(0, 0), radio.Bluetooth)
	// Walker starts next to the fixed device and leaves the 10 m range
	// after ~200 modeled seconds (~20 ms of wall time at this scale),
	// leaving plenty of modeled time for connection setup first.
	if err := env.Add("walker", mobility.Linear{Start: geo.Pt(0.5, 0), Velocity: geo.Vec(0.05, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	client, server := dialPair(t, net, "fixed", "walker", radio.Bluetooth, "svc")
	_ = server

	deadline := time.Now().Add(5 * time.Second)
	for client.Alive() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if client.Alive() {
		t.Fatal("connection should have died after walker left range")
	}
	if err := client.Err(); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("Err = %v, want ErrLinkLost", err)
	}
	if err := client.Send([]byte("x")); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("Send after loss = %v, want ErrLinkLost", err)
	}
}

func TestPartitionBreaksTraffic(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, _ := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	net.Partition("a", "b")
	// Sending should fail once the pump notices.
	var err error
	for i := 0; i < 100; i++ {
		if err = client.Send([]byte("x")); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(err, ErrLinkLost) {
		t.Fatalf("Send under partition = %v, want ErrLinkLost", err)
	}
	net.Heal("a", "b")
	// After healing, a new dial works.
	l, err := net.Listen("b", "svc2")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { _, _ = l.Accept(ctx) }()
	if _, err := net.Dial(ctx, "a", "b", radio.Bluetooth, "svc2"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestCloseDeliversPendingMessages(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	// Wait for delivery before closing.
	msg, err := server.Recv(ctx)
	if err != nil || string(msg) != "last words" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	client.Close()
	if _, err := server.Recv(ctx); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Recv after close = %v, want ErrConnClosed", err)
	}
	if server.Alive() {
		t.Fatal("peer should observe close")
	}
}

func TestRecvContextCancel(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, _ := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := client.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv = %v, want DeadlineExceeded", err)
	}
}

func TestGPRSWorksAtAnyDistance(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "here", geo.Pt(0, 0), radio.GPRS)
	addStatic(t, env, "faraway", geo.Pt(5e5, 0), radio.GPRS)
	client, server := dialPair(t, net, "here", "faraway", radio.GPRS, "svc")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.Send([]byte("over the operator")); err != nil {
		t.Fatal(err)
	}
	if got, err := server.Recv(ctx); err != nil || string(got) != "over the operator" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	buf := []byte("original")
	if err := client.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATED!")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := server.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestNetworkCloseStopsEverything(t *testing.T) {
	env := radio.NewEnvironment(WithTestScale())
	net := New(env, 1)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	net.Close()
	if _, err := net.Listen("a", "svc"); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("Listen after close = %v, want ErrNetworkClosed", err)
	}
	if _, err := net.SendBroadcast("a", radio.Bluetooth, "p", nil); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("Broadcast after close = %v, want ErrNetworkClosed", err)
	}
}

func TestBroadcastReachesOnlyInRangeSubscribers(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "src", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "near", geo.Pt(10, 0), radio.WLAN)
	addStatic(t, env, "far", geo.Pt(500, 0), radio.WLAN)

	subNear, err := net.SubscribeBroadcast("near", "disc")
	if err != nil {
		t.Fatal(err)
	}
	defer subNear.Close()
	subFar, err := net.SubscribeBroadcast("far", "disc")
	if err != nil {
		t.Fatal(err)
	}
	defer subFar.Close()

	nDelivered, err := net.SendBroadcast("src", radio.WLAN, "disc", []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if nDelivered != 1 {
		t.Fatalf("delivered = %d, want 1", nDelivered)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b, err := subNear.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b.From != "src" || string(b.Payload) != "probe" || b.Tech != radio.WLAN {
		t.Fatalf("broadcast = %+v", b)
	}
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := subFar.Recv(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("far subscriber got broadcast: %v", err)
	}
}

func TestBroadcastLoss(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "src", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "dst", geo.Pt(10, 0), radio.WLAN)
	sub, err := net.SubscribeBroadcast("dst", "disc")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	net.SetBroadcastLoss(1) // drop everything
	delivered, err := net.SendBroadcast("src", radio.WLAN, "disc", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d under full loss", delivered)
	}
	net.SetBroadcastLoss(0)
	delivered, err = net.SendBroadcast("src", radio.WLAN, "disc", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d after loss cleared", delivered)
	}
}

func TestBroadcastLossClamped(t *testing.T) {
	_, net := fastWorld(t)
	net.SetBroadcastLoss(-1)
	net.SetBroadcastLoss(2)
	// No panic and both clamp silently; behaviour checked above.
}

func TestSubscribeUnknownDevice(t *testing.T) {
	_, net := fastWorld(t)
	if _, err := net.SubscribeBroadcast("ghost", "p"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTransferTimeChargedOnWire(t *testing.T) {
	// With identity scale and a manual clock, a send should not arrive
	// until the transfer time has elapsed.
	clk := vtime.NewManual(time.Unix(0, 0))
	env := radio.NewEnvironment(radio.WithClock(clk), radio.WithScale(vtime.Identity()))
	net := New(env, 1)
	defer net.Close()
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)

	l, err := net.Listen("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept(ctx)
		if err == nil {
			acceptCh <- c
		}
	}()
	dialDone := make(chan *Conn, 1)
	go func() {
		c, err := net.Dial(ctx, "a", "b", radio.Bluetooth, "svc")
		if err != nil {
			t.Error(err)
			return
		}
		dialDone <- c
	}()
	// Dial charges ConnectSetup (1.28 s) on the manual clock.
	time.Sleep(10 * time.Millisecond) // let the dialer block on the clock
	clk.Advance(2 * time.Second)
	var client *Conn
	select {
	case client = <-dialDone:
	case <-time.After(2 * time.Second):
		t.Fatal("dial did not complete after advancing clock")
	}
	server := <-acceptCh

	if err := client.Send(make([]byte, 700_000/8)); err != nil { // ~1 s at 700 kbps
		t.Fatal(err)
	}
	// Nothing should arrive before we advance the clock.
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := server.Recv(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("message arrived before transfer time: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // let the pump block on the clock
	clk.Advance(5 * time.Second)
	got, err := server.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 700_000/8 {
		t.Fatalf("payload length = %d", len(got))
	}
}

// TestListenerBacklogQueues: more simultaneous dials than the accept
// backlog must all eventually connect once the server drains them.
func TestListenerBacklogQueues(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "server", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "client", geo.Pt(1, 0), radio.Bluetooth)
	l, err := net.Listen("server", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const dialers = 40 // backlog is 16
	var wg sync.WaitGroup
	errs := make(chan error, dialers)
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial(ctx, "client", "server", radio.Bluetooth, "svc")
			if err != nil {
				errs <- err
				return
			}
			conn.Close()
		}()
	}
	accepted := 0
	for accepted < dialers {
		conn, err := l.Accept(ctx)
		if err != nil {
			t.Fatalf("accept %d: %v", accepted, err)
		}
		conn.Close()
		accepted++
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBroadcastLossRateStatistical: at 50% loss, deliveries over many
// sends land near half (seeded rng keeps this deterministic).
func TestBroadcastLossRateStatistical(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "src", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "dst", geo.Pt(10, 0), radio.WLAN)
	sub, err := net.SubscribeBroadcast("dst", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	net.SetBroadcastLoss(0.5)
	const sends = 400
	delivered := 0
	for i := 0; i < sends; i++ {
		n, err := net.SendBroadcast("src", radio.WLAN, "p", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		delivered += n
		// Drain so the subscriber buffer never fills.
		for drained := 0; drained < n; drained++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			if _, err := sub.Recv(ctx); err != nil {
				cancel()
				t.Fatal(err)
			}
			cancel()
		}
	}
	if delivered < sends/4 || delivered > sends*3/4 {
		t.Fatalf("delivered %d/%d at 50%% loss, want roughly half", delivered, sends)
	}
}

func TestCountersTrackActivity(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	if c := net.Counters(); c != (Counters{}) {
		t.Fatalf("fresh counters = %+v", c)
	}
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	if err := client.Send([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := server.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	c := net.Counters()
	if c.DialsAttempted != 1 || c.ConnsEstablished != 1 {
		t.Errorf("dials = %d/%d, want 1/1", c.ConnsEstablished, c.DialsAttempted)
	}
	if c.MessagesDelivered != 1 || c.BytesDelivered != 5 {
		t.Errorf("delivered = %d msgs / %d bytes, want 1/5", c.MessagesDelivered, c.BytesDelivered)
	}
	// A failed dial still counts as attempted.
	if _, err := net.Dial(ctx, "a", "b", radio.Bluetooth, "nobody"); err == nil {
		t.Fatal("dial to nobody succeeded")
	}
	c = net.Counters()
	if c.DialsAttempted != 2 || c.ConnsEstablished != 1 {
		t.Errorf("after failed dial: %d/%d, want 1 established of 2 attempts", c.ConnsEstablished, c.DialsAttempted)
	}
	if _, err := net.SendBroadcast("a", radio.Bluetooth, "p", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := net.Counters().BroadcastsSent; got != 1 {
		t.Errorf("broadcasts = %d, want 1", got)
	}
}
