package netsim_test

import (
	"context"
	"testing"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file pins the conn-pair pool (conn.go): dial/close churn
// dominated the allocation profile of the large discovery sweeps, so a
// steady-state dial + request/reply + close cycle must not reallocate
// the pair or its queues. The ceilings below have slack for the
// per-cycle incidentals (fresh closed channels, payload copies, timer
// and event bookkeeping) but sit far under the cost of one unpooled
// pair: its two receive queues alone are ~12 KB, several allocations
// each.

// poolCeilingAllocs bounds average allocations per cycle; an unpooled
// pair adds ~10 on top of a pooled cycle's incidentals.
const poolCeilingAllocs = 60

// buildPoolWorld places two devices in Bluetooth range and starts a
// serial echo server on one of them.
func buildPoolWorld(t *testing.T, useDES bool) (*netsim.Network, func()) {
	t.Helper()
	opts := []radio.Option{radio.WithScale(vtime.NewScale(1e-6))}
	var sched *des.Scheduler
	if useDES {
		sched = des.NewScheduler(1, 2)
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	for _, dev := range []string{"pool-a", "pool-b"} {
		if err := env.Add(ids.DeviceID(dev), mobility.Static{At: geo.Pt(1, 1)}, radio.Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	var net *netsim.Network
	stop := func() {}
	if useDES {
		net = netsim.NewDES(env, 1, sched)
		sched.Start()
		stop = sched.Stop
	} else {
		net = netsim.New(env, 1)
	}
	l, err := net.Listen(ids.DeviceID("pool-b"), "echo")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	go func() {
		for {
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			if msg, err := c.Recv(ctx); err == nil {
				_ = c.Send(msg)
			}
			_ = c.Close()
		}
	}()
	cleanup := func() {
		net.Close()
		stop()
	}
	return net, cleanup
}

// TestConnPairAllocsPinned measures a full dial + request/reply +
// close cycle on both engines: once the pool is warm, the per-cycle
// allocation count must stay under the pooled ceiling.
func TestConnPairAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates per sync event; the pin only means anything uninstrumented")
	}
	for _, useDES := range []bool{false, true} {
		name := "goroutine"
		if useDES {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			net, cleanup := buildPoolWorld(t, useDES)
			defer cleanup()
			ctx := context.Background()
			cycle := func() {
				c, err := net.Dial(ctx, ids.DeviceID("pool-a"), ids.DeviceID("pool-b"), radio.Bluetooth, "echo")
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				if err := c.Send([]byte("ping")); err != nil {
					t.Fatalf("send: %v", err)
				}
				if _, err := c.Recv(ctx); err != nil {
					t.Fatalf("recv: %v", err)
				}
				_ = c.Close()
			}
			// Warm the pool (and let the first pair's pumps retire).
			for i := 0; i < 32; i++ {
				cycle()
			}
			avg := testing.AllocsPerRun(200, cycle)
			if avg > poolCeilingAllocs {
				t.Fatalf("dial cycle allocates %.1f objects on average, ceiling %d: conn-pair pooling regressed", avg, poolCeilingAllocs)
			}
			t.Logf("%s: %.1f allocs per dial cycle", name, avg)
		})
	}
}
