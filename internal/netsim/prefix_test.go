package netsim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/radio"
)

// TestDeliveredIsPrefixOfSentUnderLinkLoss: reliability property — when
// a link dies mid-stream, the receiver gets exactly a prefix of the
// sent sequence (no gaps, no reordering, no duplicates).
func TestDeliveredIsPrefixOfSentUnderLinkLoss(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			env := radio.NewEnvironment(WithTestScale())
			net := New(env, int64(trial))
			defer net.Close()
			addStatic(t, env, "sender", geo.Pt(0, 0), radio.Bluetooth)
			// The receiver leaves Bluetooth range at a trial-dependent
			// moment.
			leaveAfter := time.Duration(20+40*trial) * time.Second // modeled
			speed := 10.0 / leaveAfter.Seconds()                   // reaches 10 m boundary then
			if err := env.Add("receiver", mobility.Linear{Start: geo.Pt(0.1, 0), Velocity: geo.Vec(speed, 0)}, radio.Bluetooth); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			l, err := net.Listen("receiver", "sink")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			received := make(chan int, 4096)
			go func() {
				conn, err := l.Accept(ctx)
				if err != nil {
					close(received)
					return
				}
				defer conn.Close()
				for {
					msg, err := conn.Recv(ctx)
					if err != nil {
						close(received)
						return
					}
					var n int
					fmt.Sscanf(string(msg), "%d", &n)
					received <- n
				}
			}()

			conn, err := net.Dial(ctx, "sender", "receiver", radio.Bluetooth, "sink")
			if err != nil {
				t.Skip("link died before dial completed; nothing to check")
			}
			sent := 0
			for {
				if err := conn.Send([]byte(fmt.Sprintf("%d", sent))); err != nil {
					break
				}
				sent++
				if sent > 2000 {
					break // link never broke this trial; prefix still holds
				}
			}
			conn.Close()

			want := 0
			for n := range received {
				if n != want {
					t.Fatalf("trial %d: received %d, want %d (gap or reorder)", trial, n, want)
				}
				want++
			}
			if want > sent {
				t.Fatalf("trial %d: received %d messages but only %d sent", trial, want, sent)
			}
		})
	}
}
