package netsim

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/radio"
)

// relayPort is the well-known port a GPRS operator proxy listens on.
const relayPort = "gprs.relay"

// Proxy is the operator-side bridge of the thesis's GPRSPlugin
// (§4.2.3): "GPRSPlugin also operates over IP connections and uses
// proxy device as a bridge or an intermediate device." Traffic relayed
// through a proxy crosses the cellular link twice (caller→proxy and
// proxy→callee), doubling latency relative to a direct link — the
// structural reason GPRS is the last-resort technology.
type Proxy struct {
	net      *Network
	dev      ids.DeviceID
	listener *Listener

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	relayed int
}

// NewProxy starts a relay on a device (the device models the operator's
// gateway; it must carry a GPRS radio and be in coverage).
func NewProxy(net *Network, dev ids.DeviceID) (*Proxy, error) {
	listener, err := net.Listen(dev, relayPort)
	if err != nil {
		return nil, fmt.Errorf("netsim: proxy: %w", err)
	}
	p := &Proxy{net: net, dev: dev, listener: listener}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.wg.Add(1)
	go p.acceptLoop(ctx)
	return p, nil
}

// Device returns the proxy's device ID.
func (p *Proxy) Device() ids.DeviceID { return p.dev }

// Relayed reports how many connections the proxy has bridged.
func (p *Proxy) Relayed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.relayed
}

// Stop shuts the relay down; bridged connections break.
func (p *Proxy) Stop() {
	p.cancel()
	p.listener.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(ctx context.Context) {
	defer p.wg.Done()
	for {
		inbound, err := p.listener.Accept(ctx)
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.bridge(ctx, inbound)
		}()
	}
}

// bridge reads the CONNECT preamble ("device|port"), dials the target
// over GPRS, and pipes both directions until either side dies.
func (p *Proxy) bridge(ctx context.Context, inbound *Conn) {
	defer func() { _ = inbound.Close() }() // bridge teardown is best-effort
	preamble, err := inbound.Recv(ctx)
	if err != nil {
		return
	}
	target, port, ok := splitPreamble(string(preamble))
	if !ok {
		_ = inbound.Send([]byte("ERR bad connect preamble"))
		return
	}
	outbound, err := p.net.Dial(ctx, p.dev, target, radio.GPRS, port)
	if err != nil {
		_ = inbound.Send([]byte("ERR " + err.Error()))
		return
	}
	defer func() { _ = outbound.Close() }()
	if err := inbound.Send([]byte("OK")); err != nil {
		return
	}
	p.mu.Lock()
	p.relayed++
	p.mu.Unlock()

	// Either direction failing cancels the other, and the deferred
	// Closes run only after both pipes have fully exited — a pipe must
	// never race its own conn's teardown.
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	var pipes sync.WaitGroup
	pipe := func(src, dst *Conn) {
		defer pipes.Done()
		defer pcancel()
		for {
			msg, err := src.Recv(pctx)
			if err != nil {
				return
			}
			if err := dst.SendCancel(msg, pctx.Done()); err != nil {
				return
			}
		}
	}
	pipes.Add(2)
	go pipe(inbound, outbound)
	go pipe(outbound, inbound)
	pipes.Wait()
}

func splitPreamble(s string) (ids.DeviceID, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			dev := ids.DeviceID(s[:i])
			port := s[i+1:]
			if dev.Valid() && port != "" {
				return dev, port, true
			}
			return "", "", false
		}
	}
	return "", "", false
}

// DialViaProxy opens a connection to (target, port) bridged through the
// operator proxy instead of directly. The returned Conn behaves like a
// direct one but every message crosses two GPRS hops.
func (n *Network) DialViaProxy(ctx context.Context, from ids.DeviceID, proxy ids.DeviceID, target ids.DeviceID, port string) (*Conn, error) {
	conn, err := n.Dial(ctx, from, proxy, radio.GPRS, relayPort)
	if err != nil {
		return nil, fmt.Errorf("netsim: dialing proxy: %w", err)
	}
	if err := conn.Send([]byte(string(target) + "|" + port)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if string(resp) != "OK" {
		_ = conn.Close()
		return nil, fmt.Errorf("%w: proxy refused: %s", ErrUnreachable, resp)
	}
	return conn, nil
}
