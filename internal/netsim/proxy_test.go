package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func proxyWorld(t *testing.T) (*radio.Environment, *Network, *Proxy) {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := New(env, 1)
	t.Cleanup(net.Close)
	for _, id := range []string{"operator", "caller", "callee"} {
		addStatic(t, env, ids.DeviceID(id), geo.Pt(0, 0), radio.GPRS)
	}
	proxy, err := NewProxy(net, "operator")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)
	return env, net, proxy
}

func TestProxyBridgesTraffic(t *testing.T) {
	_, net, proxy := proxyWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	l, err := net.Listen("callee", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		defer conn.Close()
		// The callee sees the proxy as its peer, like a NAT'd flow.
		if conn.Remote() != "operator" {
			t.Errorf("callee peer = %v, want operator", conn.Remote())
		}
		msg, err := conn.Recv(ctx)
		if err != nil {
			return
		}
		_ = conn.Send(append([]byte("pong:"), msg...))
	}()

	conn, err := net.DialViaProxy(ctx, "caller", "operator", "callee", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pong:ping" {
		t.Fatalf("resp = %q", resp)
	}
	if proxy.Relayed() != 1 {
		t.Fatalf("Relayed = %d, want 1", proxy.Relayed())
	}
	if proxy.Device() != "operator" {
		t.Fatalf("Device = %v", proxy.Device())
	}
}

func TestProxyRefusesUnknownTarget(t *testing.T) {
	_, net, _ := proxyWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := net.DialViaProxy(ctx, "caller", "operator", "callee", "nobody-listens"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestProxyRefusesOutOfCoverageTarget(t *testing.T) {
	env, net, _ := proxyWorld(t)
	if err := env.SetCoverage("callee", false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := net.DialViaProxy(ctx, "caller", "operator", "callee", "svc"); err == nil {
		t.Fatal("dial to out-of-coverage callee succeeded")
	}
}

func TestProxyStopBreaksBridge(t *testing.T) {
	_, net, proxy := proxyWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	l, err := net.Listen("callee", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		// Hold the conn open; never respond.
		<-ctx.Done()
		conn.Close()
	}()
	conn, err := net.DialViaProxy(ctx, "caller", "operator", "callee", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy.Stop()
	// The caller's leg to the proxy should die; either Send eventually
	// errors or the conn reports dead.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := conn.Send([]byte("x")); err != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("bridge survived proxy shutdown")
}

func TestSplitPreamble(t *testing.T) {
	dev, port, ok := splitPreamble("target|svc:foo")
	if !ok || dev != "target" || port != "svc:foo" {
		t.Fatalf("got %v %v %v", dev, port, ok)
	}
	for _, bad := range []string{"", "nosep", "|port", "dev|"} {
		if _, _, ok := splitPreamble(bad); ok {
			t.Errorf("splitPreamble(%q) should fail", bad)
		}
	}
}
