//go:build race

package netsim_test

// raceEnabled reports whether the race detector is instrumenting this
// build; its sync-event bookkeeping allocates, so allocation pins skip.
const raceEnabled = true
