package netsim

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// TestStress1kDevicesConcurrentOps is the deterministic scale stress
// test: a fixed-seed 1000-device world where workers concurrently dial,
// send, move devices and power them off while the shared link sweep
// runs. Wall time is bounded by a fixed operation budget and a context
// deadline; the package leak checker (TestMain) gates teardown. The
// point is not throughput but that the O(1)-watchdog substrate survives
// every mutation the API offers happening at once under -race.
func TestStress1kDevicesConcurrentOps(t *testing.T) {
	const (
		devices      = 1000
		listenerDevs = 32
		workers      = 64
		opsPerWorker = 12
	)
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := New(env, 4242)
	defer net.Close()

	// WLAN over a 200 m square: most, but not all, pairs are in range.
	world := rand.New(rand.NewSource(7))
	devs := make([]ids.DeviceID, devices)
	for i := range devs {
		devs[i] = ids.DeviceIDf("n%04d", i)
		at := geo.Pt(world.Float64()*200, world.Float64()*200)
		if err := env.Add(devs[i], mobility.Static{At: at}, radio.WLAN); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Echo servers on the first listenerDevs devices.
	for i := 0; i < listenerDevs; i++ {
		l, err := net.Listen(devs[i], "echo")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(l *Listener) {
			for {
				conn, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(c *Conn) {
					defer c.Abort()
					for {
						msg, err := c.Recv(ctx)
						if err != nil {
							return
						}
						if err := c.Send(msg); err != nil {
							return
						}
					}
				}(conn)
			}
		}(l)
	}

	var echoed, broadcasts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for op := 0; op < opsPerWorker; op++ {
				switch rng.Intn(5) {
				case 0, 1: // dial a listener and echo a couple of messages
					from := devs[listenerDevs+rng.Intn(devices-listenerDevs)]
					to := devs[rng.Intn(listenerDevs)]
					conn, err := net.Dial(ctx, from, to, radio.WLAN, "echo")
					if err != nil {
						continue // out of range or peer powered off: expected
					}
					for k := 0; k < 1+rng.Intn(3); k++ {
						if err := conn.Send([]byte{byte(w), byte(op), byte(k)}); err != nil {
							break
						}
						if _, err := conn.Recv(ctx); err != nil {
							break
						}
						echoed.Add(1)
					}
					conn.Abort()
				case 2: // power a non-listener device off and back on
					id := devs[listenerDevs+rng.Intn(devices-listenerDevs)]
					if err := env.SetPowered(id, false); err != nil {
						t.Error(err)
					}
					if err := env.SetPowered(id, true); err != nil {
						t.Error(err)
					}
				case 3: // move a device
					id := devs[rng.Intn(devices)]
					at := geo.Pt(rng.Float64()*200, rng.Float64()*200)
					if err := env.SetModel(id, mobility.Static{At: at}); err != nil {
						t.Error(err)
					}
				default: // broadcast a discovery probe
					from := devs[rng.Intn(devices)]
					if _, err := net.SendBroadcast(from, radio.WLAN, "disc", []byte("probe")); err != nil &&
						!errors.Is(err, ErrNetworkClosed) {
						t.Error(err)
					}
					broadcasts.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatalf("stress run hit the deadline: %v", ctx.Err())
	}
	if echoed.Load() == 0 {
		t.Fatal("no echo round trip ever succeeded across the whole stress run")
	}
	if got := countGoroutinesIn(".sweepLinks"); got > 1 {
		t.Fatalf("sweepLinks goroutines after stress = %d, want <= 1", got)
	}
}
