package netsim

import (
	"context"
	"errors"
	"io"
	"sync"
)

// Stream adapts a message-oriented Conn to the io.ReadWriteCloser
// byte-stream interface, so applications can layer bufio, JSON decoders
// or any stream protocol over a PeerHood connection. Writes become one
// message each; reads consume messages and buffer partial remainders —
// the same framing freedom TCP gives over IP.
type Stream struct {
	conn *Conn
	ctx  context.Context

	mu      sync.Mutex
	pending []byte
}

// NewStream wraps a connection. The context bounds every Read; use
// context.Background for no deadline beyond connection lifetime.
func NewStream(ctx context.Context, conn *Conn) *Stream {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Stream{conn: conn, ctx: ctx}
}

var _ io.ReadWriteCloser = (*Stream)(nil)

// Read fills p with buffered bytes, receiving the next message when the
// buffer is empty. A dead connection yields io.EOF once drained. The
// mutex is released while blocked in Recv so a slow peer never wedges
// concurrent readers or a racing Close; messages a concurrent reader
// buffered in the meantime are appended behind, which is fair game —
// ordering between concurrent readers of one stream is unspecified.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		msg, err := s.conn.Recv(s.ctx)
		if err != nil {
			if errors.Is(err, ErrConnClosed) || errors.Is(err, ErrLinkLost) {
				return 0, io.EOF
			}
			return 0, err
		}
		s.mu.Lock()
		s.pending = append(s.pending, msg...)
	}
	n := copy(p, s.pending)
	s.pending = s.pending[n:]
	s.mu.Unlock()
	return n, nil
}

// Write sends p as one message.
func (s *Stream) Write(p []byte) (int, error) {
	if err := s.conn.Send(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close closes the underlying connection.
func (s *Stream) Close() error { return s.conn.Close() }
