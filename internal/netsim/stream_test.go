package netsim

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
)

func streamPair(t *testing.T) (*Stream, *Stream) {
	t.Helper()
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return NewStream(ctx, client), NewStream(ctx, server)
}

func TestStreamReadWrite(t *testing.T) {
	a, b := streamPair(t)
	if _, err := a.Write([]byte("hello stream")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello stream" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestStreamPartialReads(t *testing.T) {
	a, b := streamPair(t)
	if _, err := a.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 2)
	var got []byte
	for len(got) < 6 {
		n, err := b.Read(small)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, small[:n]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestStreamWithBufioLines(t *testing.T) {
	a, b := streamPair(t)
	go func() {
		_, _ = a.Write([]byte("line one\nline "))
		_, _ = a.Write([]byte("two\n"))
	}()
	r := bufio.NewReader(b)
	l1, err := r.ReadString('\n')
	if err != nil || l1 != "line one\n" {
		t.Fatalf("l1 = %q, %v", l1, err)
	}
	l2, err := r.ReadString('\n')
	if err != nil || l2 != "line two\n" {
		t.Fatalf("l2 = %q, %v", l2, err)
	}
}

func TestStreamWithJSONCodec(t *testing.T) {
	a, b := streamPair(t)
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	go func() {
		enc := json.NewEncoder(a)
		_ = enc.Encode(payload{Name: "first", N: 1})
		_ = enc.Encode(payload{Name: "second", N: 2})
	}()
	dec := json.NewDecoder(b)
	var p payload
	if err := dec.Decode(&p); err != nil || p.Name != "first" {
		t.Fatalf("decode 1: %+v, %v", p, err)
	}
	if err := dec.Decode(&p); err != nil || p.N != 2 {
		t.Fatalf("decode 2: %+v, %v", p, err)
	}
}

func TestStreamEOFOnClose(t *testing.T) {
	a, b := streamPair(t)
	if _, err := a.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := b.Read(buf); err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("read after close = %v, want io.EOF", err)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestStreamNilContext(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "a", "b", radio.Bluetooth, "svc")
	s := NewStream(nil, client) //nolint:staticcheck // exercising the nil-context path
	if _, err := s.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	peer := NewStream(context.Background(), server)
	buf := make([]byte, 4)
	if n, err := peer.Read(buf); err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
}
