package netsim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// TestStressManyConnections runs many concurrent connections between a
// mesh of devices, verifying per-connection ordering and integrity
// under contention for the shared radios.
func TestStressManyConnections(t *testing.T) {
	env := radio.NewEnvironment(WithTestScale())
	net := New(env, 99)
	defer net.Close()
	const devices = 6
	for i := 0; i < devices; i++ {
		addStatic(t, env, ids.DeviceIDf("d%d", i), geo.Pt(float64(i), 0), radio.Bluetooth)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Every device runs an echo server.
	for i := 0; i < devices; i++ {
		l, err := net.Listen(ids.DeviceIDf("d%d", i), "echo")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(l *Listener) {
			for {
				conn, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(c *Conn) {
					defer c.Close()
					for {
						msg, err := c.Recv(ctx)
						if err != nil {
							return
						}
						if err := c.Send(msg); err != nil {
							return
						}
					}
				}(conn)
			}
		}(l)
	}

	const msgsPerPair = 20
	var wg sync.WaitGroup
	errs := make(chan error, devices*devices)
	for i := 0; i < devices; i++ {
		for j := 0; j < devices; j++ {
			if i == j {
				continue
			}
			i, j := i, j
			wg.Add(1)
			go func() {
				defer wg.Done()
				from, to := ids.DeviceIDf("d%d", i), ids.DeviceIDf("d%d", j)
				conn, err := net.Dial(ctx, from, to, radio.Bluetooth, "echo")
				if err != nil {
					errs <- fmt.Errorf("%s->%s dial: %w", from, to, err)
					return
				}
				defer conn.Close()
				for k := 0; k < msgsPerPair; k++ {
					want := fmt.Sprintf("%d-%d-%d", i, j, k)
					if err := conn.Send([]byte(want)); err != nil {
						errs <- fmt.Errorf("%s->%s send %d: %w", from, to, k, err)
						return
					}
					got, err := conn.Recv(ctx)
					if err != nil {
						errs <- fmt.Errorf("%s->%s recv %d: %w", from, to, k, err)
						return
					}
					if string(got) != want {
						errs <- fmt.Errorf("%s->%s echo %d: got %q want %q", from, to, k, got, want)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRadioContentionSlowsParallelTransfers verifies the shared-medium
// model: two connections transmitting large payloads from the same
// device take roughly twice as long as one.
func TestRadioContentionSlowsParallelTransfers(t *testing.T) {
	// ~4 modeled seconds at the Bluetooth rate, so transfer time
	// dominates timer-granularity noise at the 1e-3 scale.
	const payload = 4 * 700_000 / 8
	run := func(streams int) time.Duration {
		// 1e-2 scale: the 4 s transfer sleeps 40 ms, so a few ms of
		// scheduling noise cannot blur the 2x contention ratio.
		env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-2)))
		net := New(env, 1)
		defer net.Close()
		addStatic(t, env, "src", geo.Pt(0, 0), radio.Bluetooth)
		addStatic(t, env, "dst", geo.Pt(5, 0), radio.Bluetooth)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()

		conns := make([]*Conn, streams)
		for s := 0; s < streams; s++ {
			l, err := net.Listen("dst", fmt.Sprintf("sink-%d", s))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			acceptCh := make(chan *Conn, 1)
			go func() {
				c, err := l.Accept(ctx)
				if err == nil {
					acceptCh <- c
				}
			}()
			c, err := net.Dial(ctx, "src", "dst", radio.Bluetooth, fmt.Sprintf("sink-%d", s))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			server := <-acceptCh
			conns[s] = c
			go func(sv *Conn) { // keep draining
				for {
					if _, err := sv.Recv(ctx); err != nil {
						return
					}
				}
			}(server)
		}

		sw := vtime.NewStopwatch(env.Clock(), env.Scale())
		var wg sync.WaitGroup
		for _, c := range conns {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.Send(make([]byte, payload)); err != nil {
					t.Error(err)
					return
				}
				// Wait until the message is actually delivered: Close
				// flushes.
				c.Close()
			}()
		}
		wg.Wait()
		return sw.Elapsed()
	}

	one := run(1)
	two := run(2)
	if two < one*3/2 {
		t.Fatalf("two parallel transfers (%v) should take ~2x one (%v); shared medium not modeled", two, one)
	}
}

// TestStressPartitionChurn flaps a partition while traffic flows; the
// system must neither deadlock nor deliver corrupted messages.
func TestStressPartitionChurn(t *testing.T) {
	env := radio.NewEnvironment(WithTestScale())
	net := New(env, 7)
	defer net.Close()
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	l, err := net.Listen("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept(ctx)
			if err != nil {
				return
			}
			go func(c *Conn) {
				defer c.Close()
				for {
					if _, err := c.Recv(ctx); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	stop := make(chan struct{})
	go func() { // churn
		for {
			select {
			case <-stop:
				return
			default:
				net.Partition("a", "b")
				time.Sleep(2 * time.Millisecond)
				net.Heal("a", "b")
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	delivered := 0
	for i := 0; i < 50; i++ {
		conn, err := net.Dial(ctx, "a", "b", radio.Bluetooth, "svc")
		if err != nil {
			// Partitioned right now; pace retries so attempts span
			// several churn cycles instead of one partition window.
			time.Sleep(time.Millisecond)
			continue
		}
		if err := conn.Send([]byte("payload")); err == nil {
			delivered++
		}
		conn.Close()
	}
	close(stop)
	if delivered == 0 {
		t.Fatal("no message ever delivered despite heal windows")
	}
}
