package netsim

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// countGoroutinesIn returns how many live goroutines have the given
// function in their stack.
func countGoroutinesIn(fn string) int {
	buf := make([]byte, 1<<22)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), fn)
}

// TestLinkSweepIsSharedAcrossConnections is the O(1)-watchdog proof:
// with 500 idle connections open, exactly one sweepLinks goroutine is
// running — the goroutine count per connection is the two pumps, not a
// per-connection watchdog ticker.
func TestLinkSweepIsSharedAcrossConnections(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := New(env, 1)
	defer net.Close()
	addStatic(t, env, "srv", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "cli", geo.Pt(5, 0), radio.WLAN)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	l, err := net.Listen("srv", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const idleConns = 500
	accepted := make(chan *Conn, idleConns)
	go func() {
		for {
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	conns := make([]*Conn, 0, idleConns)
	for i := 0; i < idleConns; i++ {
		c, err := net.Dial(ctx, "cli", "srv", radio.WLAN, "svc")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	defer func() {
		for _, c := range conns {
			c.Abort()
		}
	}()

	if got := countGoroutinesIn(".sweepLinks"); got != 1 {
		t.Fatalf("sweepLinks goroutines with %d idle conns = %d, want exactly 1", idleConns, got)
	}
	// Sanity: the pumps really are per-connection, so the sweep being
	// shared is not an artifact of nothing running at all.
	if got := countGoroutinesIn("(*Conn).pump"); got < idleConns {
		t.Fatalf("pump goroutines = %d, want >= %d", got, idleConns)
	}
}

// TestSweepRetiresWhenIdleAndRestarts verifies the sweeper's lifecycle:
// it exits once the last connection dies and a later dial starts a
// fresh one.
func TestSweepRetiresWhenIdleAndRestarts(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := New(env, 1)
	defer net.Close()
	addStatic(t, env, "a", geo.Pt(0, 0), radio.WLAN)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.WLAN)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(ctx); err != nil {
				return
			}
		}
	}()

	dialOnce := func() {
		t.Helper()
		c, err := net.Dial(ctx, "a", "b", radio.WLAN, "svc")
		if err != nil {
			t.Fatal(err)
		}
		c.Abort()
	}
	dialOnce()
	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for countGoroutinesIn(".sweepLinks") != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: sweepLinks goroutines = %d, want %d",
					what, countGoroutinesIn(".sweepLinks"), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(0, "after last conn died")
	c, err := net.Dial(ctx, "a", "b", radio.WLAN, "svc")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(1, "after redial")
	c.Abort()
}

// TestSweepBreaksIdleConnOnDeparture re-pins the ErrLinkLost semantics
// the per-connection watchdog used to provide: an idle connection whose
// peer walks out of range fails with ErrLinkLost on both ends.
func TestSweepBreaksIdleConnOnDeparture(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-3)))
	net := New(env, 1)
	defer net.Close()
	addStatic(t, env, "a", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "b", geo.Pt(5, 0), radio.Bluetooth)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept(ctx)
		if err == nil {
			acceptCh <- c
		}
	}()
	c, err := net.Dial(ctx, "a", "b", radio.Bluetooth, "svc")
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptCh

	// The peer walks away; neither end sends anything.
	if err := env.SetModel("b", mobility.Static{At: geo.Pt(1000, 0)}); err != nil {
		t.Fatal(err)
	}
	for _, end := range []*Conn{c, server} {
		if _, err := end.Recv(ctx); err == nil || !strings.Contains(err.Error(), "link lost") {
			t.Fatalf("idle conn error = %v, want ErrLinkLost", err)
		}
	}
}

// TestBroadcastTargetsMatchPerPairOracle is the broadcast half of the
// differential suite: over seeded randomized worlds the grid-backed
// target selection must deliver to exactly the subscribers the per-pair
// linkUp oracle admits (loss disabled, buffers empty, so delivery is
// deterministic).
func TestBroadcastTargetsMatchPerPairOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := vtime.NewManual(time.Unix(0, 0))
		env := radio.NewEnvironment(radio.WithClock(clk))
		net := New(env, seed)

		area := 30 + rng.Float64()*150
		n := 5 + rng.Intn(30)
		devs := make([]ids.DeviceID, 0, n)
		for i := 0; i < n; i++ {
			id := ids.DeviceIDf("d%03d", i)
			techs := []radio.Technology{radio.Bluetooth, radio.WLAN, radio.GPRS}[:1+rng.Intn(3)]
			at := geo.Pt(rng.Float64()*area, rng.Float64()*area)
			if err := env.Add(id, mobility.Static{At: at}, techs...); err != nil {
				t.Fatal(err)
			}
			devs = append(devs, id)
		}
		subs := make(map[ids.DeviceID]*BroadcastSub)
		for _, id := range devs {
			if rng.Intn(4) == 0 {
				continue // not everyone subscribes
			}
			s, err := net.SubscribeBroadcast(id, "disc")
			if err != nil {
				t.Fatal(err)
			}
			subs[id] = s
		}
		for _, id := range devs {
			if rng.Intn(6) == 0 {
				if err := env.SetPowered(id, false); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(6) == 0 {
				if err := env.SetCoverage(id, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		if rng.Intn(2) == 0 {
			net.Partition(devs[rng.Intn(n)], devs[rng.Intn(n)])
		}

		// sleepModeled parks on the manual clock; advance it from the
		// side so SendBroadcast completes. The world is static and all
		// toggles happened above, so reachability is time-invariant and
		// the concurrent advancing cannot change the target set.
		stop := make(chan struct{})
		advancerDone := make(chan struct{})
		go func() {
			defer close(advancerDone)
			for {
				select {
				case <-stop:
					return
				default:
					clk.Advance(100 * time.Millisecond)
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()

		for _, tech := range radio.AllTechnologies() {
			from := devs[rng.Intn(n)]
			delivered, err := net.SendBroadcast(from, tech, "disc", []byte("probe"))
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[ids.DeviceID]bool)
			for id := range subs {
				if net.linkUp(from, id, tech) {
					want[id] = true
				}
			}
			if delivered != len(want) {
				t.Fatalf("seed %d tech %v: delivered %d copies, oracle wants %d", seed, tech, delivered, len(want))
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			for id, s := range subs {
				if !want[id] {
					continue
				}
				b, err := s.Recv(ctx)
				if err != nil {
					t.Fatalf("seed %d tech %v: subscriber %s missing its copy: %v", seed, tech, id, err)
				}
				if b.From != from || b.Tech != tech {
					t.Fatalf("seed %d: wrong datagram %+v", seed, b)
				}
			}
			cancel()
		}
		close(stop)
		<-advancerDone
		net.Close()
	}
}
