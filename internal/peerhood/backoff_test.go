package peerhood

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// backoffHarness is a RobustConn on a manual clock, so tests can step
// through retry schedules without sleeping.
type backoffHarness struct {
	clk *vtime.Manual
	env *radio.Environment
	r   *RobustConn
}

func newBackoffHarness(t *testing.T, opts RobustOptions) *backoffHarness {
	t.Helper()
	clk := vtime.NewManual(time.Unix(0, 0))
	env := radio.NewEnvironment(radio.WithClock(clk), radio.WithScale(vtime.Identity()))
	if err := env.Add("dev-a", nil, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	if err := env.Add("dev-b", nil, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	net := netsim.New(env, 1)
	d, err := NewDaemon(Config{Device: "dev-a", Network: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	r := &RobustConn{
		daemon:  d,
		dev:     "dev-b",
		service: "chat",
		opts:    opts.withDefaults(),
		rng:     rand.New(rand.NewSource(robustSeed("dev-a", "dev-b", "chat"))),
	}
	return &backoffHarness{clk: clk, env: env, r: r}
}

// waitForWaiters blocks (in real time) until n timers are registered on
// the manual clock, so Advance cannot race a goroutine's After call.
func (h *backoffHarness) waitForWaiters(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.clk.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timer never registered (have %d, want %d)", h.clk.Waiters(), n)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// mirrorSchedule reproduces the jitter draws of a fresh RobustConn for
// the same endpoints, giving the exact expected wait sequence.
func mirrorSchedule(opts RobustOptions, retries int) []time.Duration {
	rng := rand.New(rand.NewSource(robustSeed("dev-a", "dev-b", "chat")))
	out := make([]time.Duration, retries)
	for i := range out {
		d := opts.BackoffBase
		for j := 0; j < i && d < opts.BackoffCap; j++ {
			d *= 2
		}
		if d > opts.BackoffCap {
			d = opts.BackoffCap
		}
		half := d / 2
		out[i] = half + time.Duration(rng.Int63n(int64(half)+1))
	}
	return out
}

// The backoff schedule is deterministic per endpoint triple, doubles
// up to the cap, and every delay carries equal jitter in [d/2, d].
func TestBackoffDelaySchedule(t *testing.T) {
	opts := RobustOptions{BackoffBase: 250 * time.Millisecond, BackoffCap: 4 * time.Second}
	h := newBackoffHarness(t, opts)
	want := mirrorSchedule(h.r.opts, 8)
	for retry, expected := range want {
		got := h.r.backoffDelay(retry)
		if got != expected {
			t.Fatalf("retry %d: backoffDelay = %v, want %v", retry, got, expected)
		}
		nominal := opts.BackoffBase << retry
		if nominal > opts.BackoffCap {
			nominal = opts.BackoffCap
		}
		if got < nominal/2 || got > nominal {
			t.Fatalf("retry %d: delay %v outside [%v, %v]", retry, got, nominal/2, nominal)
		}
	}
	// Far past the doubling range the nominal delay stays pinned at the cap.
	for retry := 8; retry < 40; retry++ {
		if got := h.r.backoffDelay(retry); got > opts.BackoffCap {
			t.Fatalf("retry %d: delay %v exceeds cap %v", retry, got, opts.BackoffCap)
		}
	}
}

// waitBackoff sleeps exactly the jittered delay on the environment
// clock: one tick short of the deadline it is still waiting, at the
// deadline it returns.
func TestWaitBackoffExactWaits(t *testing.T) {
	opts := RobustOptions{BackoffBase: time.Second, BackoffCap: 8 * time.Second, CallTimeout: time.Hour}
	h := newBackoffHarness(t, opts)
	want := mirrorSchedule(h.r.opts, 3)
	for retry, expected := range want {
		done := make(chan error, 1)
		go func() { done <- h.r.waitBackoff(context.Background(), retry) }()
		h.waitForWaiters(t, 1)
		h.clk.Advance(expected - time.Nanosecond)
		select {
		case err := <-done:
			t.Fatalf("retry %d: waitBackoff returned %v before its %v deadline", retry, err, expected)
		default:
		}
		h.clk.Advance(time.Nanosecond)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("retry %d: waitBackoff = %v", retry, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("retry %d: waitBackoff never returned after full advance", retry)
		}
	}
}

// A deadline firing mid-backoff aborts the wait with ErrCallTimeout,
// without waiting out the rest of the backoff.
func TestDeadlineAbortsBackoff(t *testing.T) {
	opts := RobustOptions{
		BackoffBase: 10 * time.Second,
		BackoffCap:  10 * time.Second,
		CallTimeout: 3 * time.Second,
	}
	h := newBackoffHarness(t, opts)
	octx, stop := h.r.deadlineContext(context.Background())
	defer stop()
	h.waitForWaiters(t, 1) // the deadline timer
	done := make(chan error, 1)
	go func() { done <- h.r.waitBackoff(octx, 0) }()
	h.waitForWaiters(t, 2) // plus the backoff timer
	// CallTimeout is 3s but realTimeout floors guard timers at 2s real;
	// with an identity scale the floor is the smaller and never governs.
	h.clk.Advance(3 * time.Second)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCallTimeout) {
			t.Fatalf("waitBackoff under expired deadline = %v, want ErrCallTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waitBackoff did not abort when the deadline fired")
	}
}

// do() retries dial failures with backoff and gives up after
// MaxAttempts, and the per-call deadline converts the failure into
// ErrCallTimeout when it expires first.
func TestDoRespectsMaxAttemptsAndDeadline(t *testing.T) {
	opts := RobustOptions{
		MaxAttempts: 3,
		BackoffBase: time.Second,
		BackoffCap:  time.Second,
		CallTimeout: time.Hour,
	}
	h := newBackoffHarness(t, opts)
	// Powered off, dev-b is unreachable, so every re-dial fails fast
	// with ErrNoRoute — the retryable dial-failure path.
	h.env.SetPowered("dev-b", false)
	done := make(chan error, 1)
	go func() {
		_, err := h.r.do(context.Background(), func(context.Context, *netsim.Conn) ([]byte, error) {
			t.Error("op ran without a live connection")
			return nil, nil
		})
		done <- err
	}()
	// Two backoff waits separate the three dial attempts.
	for i := 0; i < opts.MaxAttempts-1; i++ {
		h.waitForWaiters(t, 2) // deadline timer + backoff timer
		select {
		case err := <-done:
			t.Fatalf("do returned %v after only %d backoffs", err, i)
		default:
		}
		h.clk.Advance(time.Second)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("do = %v, want ErrNoRoute", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("do never returned after all backoffs elapsed")
	}

	// Same shape, but the deadline expires during the first backoff.
	h2 := newBackoffHarness(t, RobustOptions{
		MaxAttempts: 10,
		BackoffBase: 10 * time.Second,
		BackoffCap:  10 * time.Second,
		CallTimeout: 2 * time.Second,
	})
	h2.env.SetPowered("dev-b", false)
	go func() {
		_, err := h2.r.do(context.Background(), func(context.Context, *netsim.Conn) ([]byte, error) {
			return nil, netsim.ErrLinkLost
		})
		done <- err
	}()
	h2.waitForWaiters(t, 2)
	h2.clk.Advance(2 * time.Second)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCallTimeout) {
			t.Fatalf("do under expired deadline = %v, want ErrCallTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("do did not abort when the deadline fired")
	}
}
