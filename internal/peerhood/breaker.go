package peerhood

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// Breaker states: closed admits everything, open admits nothing,
// half-open admits exactly one probe at a time.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions tunes a circuit breaker. OpenFor is in the breaker
// clock's own units: callers on a scaled environment clock convert
// modeled durations before constructing the breaker, and manual-clock
// tests pass raw durations — the breaker itself never touches a scale.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count — the health
	// score — that trips a closed breaker open (default 3).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before it allows a
	// half-open probe (default 10s on the breaker's clock).
	OpenFor time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 10 * time.Second
	}
	return o
}

// BreakerCounts are monotonic totals of a breaker's transitions.
type BreakerCounts struct {
	// Opened counts closed→open trips.
	Opened uint64
	// Reopened counts half-open→open trips (a probe failed).
	Reopened uint64
	// Probes counts half-open admissions.
	Probes uint64
	// Readmitted counts recoveries: a success observed while not closed,
	// re-closing the breaker.
	Readmitted uint64
}

// Breaker is a deterministic per-peer circuit breaker: closed→open
// after FailureThreshold consecutive failures, open→half-open once
// OpenFor has elapsed on the supplied clock, half-open admits a single
// probe whose outcome either re-closes or re-opens the circuit. All
// transitions are pure functions of the Allow/Record sequence and
// clock readings — no timers, no goroutines — so a vtime.Manual clock
// drives them deterministically in tests. Safe for concurrent use.
type Breaker struct {
	clock vtime.Clock
	opts  BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	counts   BreakerCounts
}

// NewBreaker returns a closed breaker evaluating OpenFor on the given
// clock.
func NewBreaker(clock vtime.Clock, opts BreakerOptions) *Breaker {
	return &Breaker{clock: clock, opts: opts.withDefaults()}
}

// Allow reports whether a call to the peer may proceed right now. A
// true return from a non-closed breaker is a probe admission: the
// caller must Record its outcome, or the half-open state stays
// occupied and keeps rejecting.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.opts.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		fallthrough
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		b.counts.Probes++
		return true
	}
}

// Record feeds one call outcome into the health score.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != BreakerClosed {
			b.counts.Readmitted++
		}
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.probing = false
		b.counts.Reopened++
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.clock.Now()
			b.counts.Opened++
		}
	default: // BreakerOpen: a straggler from before the trip; the open
		// window is not extended, so recovery timing stays deterministic.
	}
}

// State returns the breaker's current position without side effects.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Failures returns the current consecutive-failure health score.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// Counts returns a snapshot of the transition totals.
func (b *Breaker) Counts() BreakerCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts
}
