package peerhood

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/vtime"
)

func manualBreaker(opts BreakerOptions) (*Breaker, *vtime.Manual) {
	clk := vtime.NewManual(time.Unix(0, 0))
	return NewBreaker(clk, opts), clk
}

func TestBreakerOpensAfterNConsecutiveFailures(t *testing.T) {
	b, _ := manualBreaker(BreakerOptions{FailureThreshold: 3, OpenFor: 10 * time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed || b.Failures() != 2 {
		t.Fatalf("state %v failures %d before threshold", b.State(), b.Failures())
	}
	// A success resets the consecutive count: failures must be
	// consecutive to trip the breaker.
	b.Record(true)
	if b.Failures() != 0 {
		t.Fatalf("success did not reset health score: %d", b.Failures())
	}
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before OpenFor elapsed")
	}
	if c := b.Counts(); c.Opened != 1 {
		t.Fatalf("Opened = %d, want 1", c.Opened)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := manualBreaker(BreakerOptions{FailureThreshold: 1, OpenFor: 10 * time.Second})
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v", b.State())
	}
	clk.Advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("admitted before OpenFor elapsed")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("rejected the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission", b.State())
	}
	// Exactly one probe may be in flight.
	if b.Allow() {
		t.Fatal("admitted a second concurrent probe")
	}
	// Probe succeeds: breaker closes, traffic resumes.
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state %v after successful probe", b.State())
	}
	if c := b.Counts(); c.Probes != 1 || c.Readmitted != 1 {
		t.Fatalf("counts %+v, want 1 probe / 1 readmit", c)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := manualBreaker(BreakerOptions{FailureThreshold: 1, OpenFor: 5 * time.Second})
	b.Record(false)
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("rejected the probe")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe", b.State())
	}
	// The open window restarts from the failed probe.
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("admitted before the reopened window elapsed")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("rejected the second probe")
	}
	if c := b.Counts(); c.Reopened != 1 || c.Probes != 2 {
		t.Fatalf("counts %+v, want 1 reopen / 2 probes", c)
	}
}

// A straggler failure arriving while the breaker is already open must
// not extend the open window — recovery timing stays a pure function
// of the trip time.
func TestBreakerStragglerDoesNotExtendOpenWindow(t *testing.T) {
	b, clk := manualBreaker(BreakerOptions{FailureThreshold: 1, OpenFor: 10 * time.Second})
	b.Record(false)
	clk.Advance(9 * time.Second)
	b.Record(false) // in-flight call from before the trip resolves late
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("straggler failure extended the open window")
	}
}

// Two breakers fed the identical seeded outcome/advance sequence stay
// in lockstep: the state machine has no hidden nondeterminism.
func TestBreakerDeterministicAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		opts := BreakerOptions{FailureThreshold: 3, OpenFor: 8 * time.Second}
		b1, c1 := manualBreaker(opts)
		b2, c2 := manualBreaker(opts)
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 500; step++ {
			switch rng.Intn(3) {
			case 0:
				d := time.Duration(rng.Intn(5000)) * time.Millisecond
				c1.Advance(d)
				c2.Advance(d)
			case 1:
				if b1.Allow() != b2.Allow() {
					t.Fatalf("seed %d step %d: Allow diverged", seed, step)
				}
			default:
				ok := rng.Intn(2) == 0
				b1.Record(ok)
				b2.Record(ok)
			}
			if b1.State() != b2.State() || b1.Failures() != b2.Failures() {
				t.Fatalf("seed %d step %d: state diverged: %v/%d vs %v/%d",
					seed, step, b1.State(), b1.Failures(), b2.State(), b2.Failures())
			}
		}
		if b1.Counts() != b2.Counts() {
			t.Fatalf("seed %d: counts diverged: %+v vs %+v", seed, b1.Counts(), b2.Counts())
		}
	}
}
