package peerhood

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
)

// TestChurnNeighborTableConsistency flaps devices on and off while a
// daemon runs background discovery: the neighbor table must always be a
// subset of currently-existing devices and the daemon must not panic or
// deadlock.
func TestChurnNeighborTableConsistency(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "observer", geo.Pt(0, 0), radio.Bluetooth)
	const flappers = 4
	for i := 0; i < flappers; i++ {
		w.addStatic(t, ids.DeviceIDf("flap-%d", i), geo.Pt(float64(i+1), 0), radio.Bluetooth)
		w.daemon(t, ids.DeviceIDf("flap-%d", i))
	}
	observer := w.daemon(t, "observer")
	if err := observer.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < flappers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := ids.DeviceIDf("flap-%d", i)
			on := true
			for {
				select {
				case <-stop:
					_ = w.env.SetPowered(dev, true)
					return
				default:
					on = !on
					_ = w.env.SetPowered(dev, on)
					time.Sleep(time.Duration(1+i) * time.Millisecond)
				}
			}
		}()
	}

	// While churn runs, the neighbor table must stay internally sane.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, n := range observer.Neighbors() {
			if !w.env.Has(n.Device) {
				t.Fatalf("neighbor table contains unknown device %q", n.Device)
			}
			if n.Device == "observer" {
				t.Fatal("daemon listed itself as a neighbor")
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// With everyone back on, a fresh round finds all flappers.
	ctx := testCtx(t)
	if err := observer.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(observer.Neighbors()); got != flappers {
		t.Fatalf("neighbors after churn settled = %d, want %d", got, flappers)
	}
}

// TestConcurrentConnectsToOneService hammers one service from many
// goroutines at once.
func TestConcurrentConnectsToOneService(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "server", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "client", geo.Pt(1, 0), radio.Bluetooth)
	ds := w.daemon(t, "server")
	dc := w.daemon(t, "client")
	echoService(t, ds, "echo")
	ctx := testCtx(t)

	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dc.Connect(ctx, "server", "echo")
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := fmt.Sprintf("caller-%d", i)
			if err := conn.Send([]byte(msg)); err != nil {
				errs <- err
				return
			}
			resp, err := conn.Recv(ctx)
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != "ok:"+msg {
				errs <- fmt.Errorf("caller %d got %q", i, resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestManyMonitorsConcurrent registers and cancels monitors from many
// goroutines while events fire.
func TestManyMonitorsConcurrent(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(1, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}
	var fired sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel := da.Monitor("b", func(ev MonitorEvent) {
				fired.Store(i, ev)
			})
			time.Sleep(time.Duration(i%5) * time.Millisecond)
			if i%2 == 0 {
				cancel()
			}
		}()
	}
	wg.Wait()
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	// At least the surviving odd monitors should hear about it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		count := 0
		fired.Range(func(_, _ any) bool { count++; return true })
		if count > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no surviving monitor fired after disappearance")
}
