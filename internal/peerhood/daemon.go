package peerhood

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// sdpPort is the well-known port every daemon serves service discovery
// on, playing the role of Bluetooth SDP.
const sdpPort = "peerhood.sdp"

// servicePortPrefix namespaces application service ports.
const servicePortPrefix = "svc:"

// ServicePort is the transport port a registered service listens on —
// the daemon's port namespacing made visible for event-native callers
// that dial with netsim's event API instead of through a plugin.
func ServicePort(name ids.ServiceName) string { return servicePortPrefix + string(name) }

// Defaults for the daemon's periodic work, in modeled time.
const (
	defaultDiscoveryInterval = 5 * time.Second
	defaultMonitorInterval   = time.Second
	sdpTimeout               = 5 * time.Second
)

// Sentinel errors.
var (
	ErrNotRunning        = errors.New("peerhood: daemon not running")
	ErrAlreadyRunning    = errors.New("peerhood: daemon already running")
	ErrUnknownNeighbor   = errors.New("peerhood: device not in neighborhood")
	ErrServiceRegistered = errors.New("peerhood: service already registered")
	ErrNoRoute           = errors.New("peerhood: no technology reaches device")
)

// Config configures a Daemon.
type Config struct {
	// Device is the local device this daemon runs on. Required.
	Device ids.DeviceID
	// Network is the transport. Required.
	Network *netsim.Network
	// Technologies restricts the plugins loaded; defaults to every
	// radio the device carries.
	Technologies []radio.Technology
	// DiscoveryInterval is the modeled pause between discovery rounds.
	DiscoveryInterval time.Duration
	// MonitorInterval is the modeled period of the active-monitoring
	// reachability check.
	MonitorInterval time.Duration
	// GPRSProxy names the operator proxy device GPRS connections are
	// bridged through; empty means direct cellular links.
	GPRSProxy ids.DeviceID
}

// NeighborInfo is one row of the daemon's neighbor table.
type NeighborInfo struct {
	Device ids.DeviceID
	// Technologies the neighbor was seen on, preference-ordered.
	Technologies []radio.Technology
	// Services the neighbor advertises, from the last SDP exchange.
	Services []ServiceDescription
	// LastSeen is the modeled environment time of the last sighting.
	LastSeen time.Duration
}

// MonitorEvent notifies a monitor about a device's availability change.
type MonitorEvent struct {
	Device   ids.DeviceID
	Appeared bool // true: came into range; false: went out of range
}

// MonitorFunc receives monitor events. Callbacks run on daemon
// goroutines and must not block.
type MonitorFunc func(MonitorEvent)

type monitorEntry struct {
	device ids.DeviceID
	fn     MonitorFunc
	// present is the last state delivered, so transitions fire once.
	present bool
	primed  bool
}

type localService struct {
	desc     ServiceDescription
	listener *netsim.Listener
}

// Daemon is the PeerHood Daemon (PHD, §4.2.1): it keeps the neighbor
// table fresh, serves SDP requests, registers local services, routes
// connections and runs active monitoring.
type Daemon struct {
	cfg     Config
	plugins pluginSet

	mu          sync.Mutex
	neighbors   map[ids.DeviceID]*NeighborInfo
	services    map[ids.ServiceName]*localService
	monitors    map[int]*monitorEntry
	nextMonID   int
	running     bool
	cancel      context.CancelFunc
	probeCancel func()

	sdp     *netsim.Listener
	wg      sync.WaitGroup
	stats   statCounters
	linkq   linkCounters
	history *history
}

// NewDaemon creates a daemon and starts serving SDP immediately (a
// PeerHood device answers discovery as soon as it exists); the
// discovery/monitor loops start with Start.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Network == nil {
		return nil, errors.New("peerhood: Config.Network is required")
	}
	if !cfg.Device.Valid() {
		return nil, fmt.Errorf("peerhood: invalid device id %q", cfg.Device)
	}
	env := cfg.Network.Environment()
	if !env.Has(cfg.Device) {
		return nil, fmt.Errorf("peerhood: %w: %q", radio.ErrUnknownDevice, cfg.Device)
	}
	if len(cfg.Technologies) == 0 {
		cfg.Technologies = env.Technologies(cfg.Device)
	}
	if len(cfg.Technologies) == 0 {
		return nil, fmt.Errorf("peerhood: device %q has no radios", cfg.Device)
	}
	if cfg.DiscoveryInterval <= 0 {
		cfg.DiscoveryInterval = defaultDiscoveryInterval
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = defaultMonitorInterval
	}
	d := &Daemon{
		cfg:       cfg,
		neighbors: make(map[ids.DeviceID]*NeighborInfo),
		services:  make(map[ids.ServiceName]*localService),
		monitors:  make(map[int]*monitorEntry),
		history:   newHistory(),
	}
	d.plugins = newPluginSet(cfg.Network, cfg.Device, cfg.Technologies, cfg.GPRSProxy).meter(&d.linkq)
	sdp, err := cfg.Network.Listen(cfg.Device, sdpPort)
	if err != nil {
		return nil, fmt.Errorf("peerhood: serving SDP: %w", err)
	}
	d.sdp = sdp
	d.wg.Add(1)
	go d.serveSDP()
	d.listenForProbes()
	return d, nil
}

// listenForProbes subscribes to WLAN discovery broadcasts when the
// device carries a WLAN radio: hearing another daemon's probe teaches
// this daemon about that device without running its own inquiry — the
// passive half of the thesis's broadcast-based service discovery.
func (d *Daemon) listenForProbes() {
	hasWLAN := false
	for _, t := range d.cfg.Technologies {
		if t == radio.WLAN {
			hasWLAN = true
		}
	}
	if !hasWLAN {
		return
	}
	sub, err := d.cfg.Network.SubscribeBroadcast(d.cfg.Device, discoveryPort)
	if err != nil {
		return // no passive discovery; active rounds still work
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.mu.Lock()
	d.probeCancel = func() {
		cancel()
		sub.Close()
	}
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			b, err := sub.Recv(ctx)
			if err != nil {
				return
			}
			if b.From == d.cfg.Device {
				continue
			}
			d.learnFromProbe(ctx, b.From)
		}
	}()
}

// learnFromProbe opportunistically adds a probing device to the
// neighbor table if it is not already known.
func (d *Daemon) learnFromProbe(ctx context.Context, dev ids.DeviceID) {
	d.mu.Lock()
	_, known := d.neighbors[dev]
	d.mu.Unlock()
	if known {
		return
	}
	svcs, err := d.fetchServices(ctx, dev, []radio.Technology{radio.WLAN})
	if err != nil {
		return // prober moved on; the next active round will find it
	}
	now := d.cfg.Network.Environment().Elapsed()
	info := &NeighborInfo{
		Device:       dev,
		Technologies: []radio.Technology{radio.WLAN},
		Services:     svcs,
		LastSeen:     now,
	}
	d.history.record(info)
	d.mu.Lock()
	if _, known := d.neighbors[dev]; !known {
		d.neighbors[dev] = info
	}
	d.mu.Unlock()
	d.checkMonitors()
}

// Device returns the local device ID.
func (d *Daemon) Device() ids.DeviceID { return d.cfg.Device }

// Network returns the transport the daemon uses.
func (d *Daemon) Network() *netsim.Network { return d.cfg.Network }

// Start launches the background discovery and monitoring loops.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		return ErrAlreadyRunning
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.cancel = cancel
	d.running = true
	d.wg.Add(2)
	go d.discoveryLoop(ctx)
	go d.monitorLoop(ctx)
	return nil
}

// Stop halts the loops and the SDP server. The daemon cannot be
// restarted after Stop; create a new one.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.cancel != nil {
		d.cancel()
	}
	d.running = false
	// Close listeners in name order so shutdown errors and listener
	// teardown replay identically run to run.
	svcs := make([]*localService, 0, len(d.services))
	for _, s := range d.services {
		svcs = append(svcs, s)
	}
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].desc.Name < svcs[j].desc.Name })
	probeCancel := d.probeCancel
	d.mu.Unlock()
	if probeCancel != nil {
		probeCancel()
	}
	d.sdp.Close()
	for _, s := range svcs {
		s.listener.Close()
	}
	d.wg.Wait()
}

// --- Service registration (Table 3: "Service Sharing") ---

// RegisterService registers a named service with attributes and returns
// the listener the application accepts connections on, like the
// pRegisterService call in Figure 8.
func (d *Daemon) RegisterService(name ids.ServiceName, attrs map[string]string) (*netsim.Listener, error) {
	desc := ServiceDescription{Name: name, Attributes: attrs}
	if err := validateService(desc); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if _, ok := d.services[name]; ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrServiceRegistered, name)
	}
	d.mu.Unlock()
	l, err := d.cfg.Network.Listen(d.cfg.Device, servicePortPrefix+string(name))
	if err != nil {
		return nil, fmt.Errorf("peerhood: registering %q: %w", name, err)
	}
	d.mu.Lock()
	d.services[name] = &localService{desc: desc.Clone(), listener: l}
	d.mu.Unlock()
	return l, nil
}

// UnregisterService removes a service and closes its listener.
func (d *Daemon) UnregisterService(name ids.ServiceName) {
	d.mu.Lock()
	s, ok := d.services[name]
	delete(d.services, name)
	d.mu.Unlock()
	if ok {
		s.listener.Close()
	}
}

// LocalServices lists the services registered on this device.
func (d *Daemon) LocalServices() []ServiceDescription {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ServiceDescription, 0, len(d.services))
	for _, s := range d.services {
		out = append(out, s.desc.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- Neighbor table (Table 3: "Device Discovery" / "Service Discovery") ---

// Neighbors returns the current neighbor table, sorted by device ID.
func (d *Daemon) Neighbors() []NeighborInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NeighborInfo, 0, len(d.neighbors))
	for _, n := range d.neighbors {
		out = append(out, cloneNeighbor(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Neighbor returns one neighbor's info.
func (d *Daemon) Neighbor(dev ids.DeviceID) (NeighborInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.neighbors[dev]
	if !ok {
		return NeighborInfo{}, fmt.Errorf("%w: %q", ErrUnknownNeighbor, dev)
	}
	return cloneNeighbor(n), nil
}

// ServicesOf returns the cached service list of a neighbor.
func (d *Daemon) ServicesOf(dev ids.DeviceID) ([]ServiceDescription, error) {
	n, err := d.Neighbor(dev)
	if err != nil {
		return nil, err
	}
	return n.Services, nil
}

// DevicesOffering returns the neighbors that advertise a service,
// sorted by device ID.
func (d *Daemon) DevicesOffering(service ids.ServiceName) []ids.DeviceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []ids.DeviceID
	for dev, n := range d.neighbors {
		for _, s := range n.Services {
			if s.Name == service {
				out = append(out, dev)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cloneNeighbor(n *NeighborInfo) NeighborInfo {
	out := NeighborInfo{Device: n.Device, LastSeen: n.LastSeen}
	out.Technologies = append([]radio.Technology(nil), n.Technologies...)
	for _, s := range n.Services {
		out.Services = append(out.Services, s.Clone())
	}
	return out
}

// --- Connections (Table 3: "Connection Establishment") ---

// Connect dials a service on a neighbor, trying technologies in
// preference order among those currently reachable.
func (d *Daemon) Connect(ctx context.Context, dev ids.DeviceID, service ids.ServiceName) (*netsim.Conn, error) {
	var lastErr error
	for _, p := range d.plugins {
		if !p.Reachable(dev) {
			continue
		}
		conn, err := p.Dial(ctx, dev, servicePortPrefix+string(service))
		if err == nil {
			d.stats.connectsRouted.Add(1)
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: %q", ErrNoRoute, dev)
}

// --- Monitoring (Table 3: "Active monitoring of a device") ---

// Monitor registers a callback for appearance/disappearance of a
// device. The device's reachability at registration time is the
// baseline; the callback fires on every transition away from the last
// reported state. The returned cancel function unregisters.
func (d *Daemon) Monitor(dev ids.DeviceID, fn MonitorFunc) (cancel func()) {
	baseline := d.reachableAnyTech(dev)
	d.mu.Lock()
	id := d.nextMonID
	d.nextMonID++
	d.monitors[id] = &monitorEntry{device: dev, fn: fn, present: baseline, primed: true}
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.monitors, id)
		d.mu.Unlock()
	}
}

// reachableAnyTech reports whether any plugin can reach the device.
func (d *Daemon) reachableAnyTech(dev ids.DeviceID) bool {
	for _, p := range d.plugins {
		if p.Reachable(dev) {
			return true
		}
	}
	return false
}

// checkMonitors fires transition callbacks. Runs on monitor ticks and
// after discovery rounds.
func (d *Daemon) checkMonitors() {
	type firing struct {
		fn MonitorFunc
		ev MonitorEvent
	}
	var firings []firing
	d.mu.Lock()
	// Fire callbacks in registration order (monitor IDs are monotonic);
	// map order would interleave appeared/disappeared events
	// differently each run.
	monIDs := make([]int, 0, len(d.monitors))
	for id := range d.monitors {
		monIDs = append(monIDs, id)
	}
	sort.Ints(monIDs)
	for _, id := range monIDs {
		m := d.monitors[id]
		present := d.reachableAnyTech(m.device)
		if !m.primed {
			m.primed = true
			m.present = present
			continue
		}
		if present != m.present {
			m.present = present
			firings = append(firings, firing{fn: m.fn, ev: MonitorEvent{Device: m.device, Appeared: present}})
		}
	}
	d.mu.Unlock()
	for _, f := range firings {
		d.stats.monitorEvents.Add(1)
		f.fn(f.ev)
	}
}

// --- Background loops ---

func (d *Daemon) discoveryLoop(ctx context.Context) {
	defer d.wg.Done()
	env := d.cfg.Network.Environment()
	for {
		if err := d.RefreshNow(ctx); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-env.Clock().After(env.Scale().ToReal(d.cfg.DiscoveryInterval)):
		}
	}
}

func (d *Daemon) monitorLoop(ctx context.Context) {
	defer d.wg.Done()
	env := d.cfg.Network.Environment()
	for {
		select {
		case <-ctx.Done():
			return
		case <-env.Clock().After(env.Scale().ToReal(d.cfg.MonitorInterval)):
			d.checkMonitors()
		}
	}
}

// RefreshNow runs one full discovery round synchronously: every plugin
// performs an inquiry in parallel, then the daemon fetches service
// lists from each found device and replaces the neighbor table.
func (d *Daemon) RefreshNow(ctx context.Context) error {
	type discovery struct {
		tech  radio.Technology
		found []ids.DeviceID
	}
	results := make(chan discovery, len(d.plugins))
	for _, p := range d.plugins {
		p := p
		go func() {
			found, err := p.Discover(ctx)
			if err != nil {
				found = nil
			}
			results <- discovery{tech: p.Technology(), found: found}
		}()
	}
	byDevice := make(map[ids.DeviceID][]radio.Technology)
	for range d.plugins {
		r := <-results
		for _, dev := range r.found {
			byDevice[dev] = append(byDevice[dev], r.tech)
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	// Fetch service lists in parallel.
	type sdpResult struct {
		dev  ids.DeviceID
		svcs []ServiceDescription
		ok   bool
	}
	sdpResults := make(chan sdpResult, len(byDevice))
	for dev, techs := range byDevice {
		dev, techs := dev, techs
		go func() {
			svcs, err := d.fetchServices(ctx, dev, techs)
			sdpResults <- sdpResult{dev: dev, svcs: svcs, ok: err == nil}
		}()
	}
	now := d.cfg.Network.Environment().Elapsed()
	fresh := make(map[ids.DeviceID]*NeighborInfo, len(byDevice))
	for range byDevice {
		r := <-sdpResults
		if !r.ok {
			// Device answered inquiry but vanished before SDP; skip it
			// this round, like real PeerHood would.
			continue
		}
		techs := byDevice[r.dev]
		sortTechs(techs)
		fresh[r.dev] = &NeighborInfo{
			Device:       r.dev,
			Technologies: techs,
			Services:     r.svcs,
			LastSeen:     now,
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	for _, n := range fresh {
		d.history.record(n)
	}
	d.mu.Lock()
	d.neighbors = fresh
	d.mu.Unlock()
	d.stats.discoveryRounds.Add(1)
	d.checkMonitors()
	return nil
}

// fetchServices performs the SDP exchange with one device over the
// first technology that answers.
func (d *Daemon) fetchServices(ctx context.Context, dev ids.DeviceID, techs []radio.Technology) ([]ServiceDescription, error) {
	env := d.cfg.Network.Environment()
	sdpCtx, cancel := context.WithTimeout(ctx, realTimeout(env, sdpTimeout))
	defer cancel()
	sortTechs(techs)
	var lastErr error
	for _, tech := range techs {
		p := d.plugins.forTech(tech)
		if p == nil {
			continue
		}
		conn, err := p.Dial(sdpCtx, dev, sdpPort)
		if err != nil {
			lastErr = err
			continue
		}
		d.stats.sdpQueriesSent.Add(1)
		svcs, err := querySDP(sdpCtx, conn)
		_ = conn.Close() // query is complete either way
		if err != nil {
			lastErr = err
			continue
		}
		return svcs, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %q", ErrNoRoute, dev)
	}
	return nil, lastErr
}

func querySDP(ctx context.Context, conn *netsim.Conn) ([]ServiceDescription, error) {
	if err := conn.Send([]byte("LIST")); err != nil {
		return nil, err
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	return decodeServices(resp)
}

// serveSDP answers LIST requests with the local service registry.
func (d *Daemon) serveSDP() {
	defer d.wg.Done()
	ctx := context.Background()
	for {
		conn, err := d.sdp.Accept(ctx)
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() { _ = conn.Close() }()
			env := d.cfg.Network.Environment()
			reqCtx, cancel := context.WithTimeout(ctx, realTimeout(env, sdpTimeout))
			defer cancel()
			req, err := conn.Recv(reqCtx)
			if err != nil || string(req) != "LIST" {
				return
			}
			d.stats.sdpQueriesServed.Add(1)
			_ = conn.Send(encodeServices(d.LocalServices()))
		}()
	}
}

// realTimeout converts a modeled guard timeout to real time with a
// floor, so aggressive latency scales don't turn scheduling jitter into
// spurious timeouts. Guard timeouts only fire on failure, so a generous
// floor never distorts measured durations.
func realTimeout(env *radio.Environment, modeled time.Duration) time.Duration {
	const floor = 2 * time.Second
	d := env.Scale().ToReal(modeled)
	if d < floor {
		return floor
	}
	return d
}

func sortTechs(techs []radio.Technology) {
	order := map[radio.Technology]int{radio.Bluetooth: 0, radio.WLAN: 1, radio.GPRS: 2}
	sort.Slice(techs, func(i, j int) bool { return order[techs[i]] < order[techs[j]] })
}
