package peerhood

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// testScale compresses modeled time 10000x.
var testScale = vtime.NewScale(1e-4)

type world struct {
	env *radio.Environment
	net *netsim.Network
}

func newWorld(t *testing.T) *world {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(testScale))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	return &world{env: env, net: net}
}

func (w *world) addStatic(t *testing.T, id ids.DeviceID, at geo.Point, techs ...radio.Technology) {
	t.Helper()
	if err := w.env.Add(id, mobility.Static{At: at}, techs...); err != nil {
		t.Fatal(err)
	}
}

func (w *world) daemon(t *testing.T, id ids.DeviceID) *Daemon {
	t.Helper()
	d, err := NewDaemon(Config{Device: id, Network: w.net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNewDaemonValidation(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	if _, err := NewDaemon(Config{Device: "a"}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewDaemon(Config{Device: "", Network: w.net}); err == nil {
		t.Error("empty device accepted")
	}
	if _, err := NewDaemon(Config{Device: "ghost", Network: w.net}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestNewDaemonNoRadios(t *testing.T) {
	w := newWorld(t)
	if err := w.env.Add("bare", mobility.Static{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDaemon(Config{Device: "bare", Network: w.net}); err == nil {
		t.Error("device without radios accepted")
	}
}

// TestTable3_DeviceDiscovery: "PeerHood detects other PeerHood-capable
// devices which are within the range."
func TestTable3_DeviceDiscovery(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	w.addStatic(t, "far", geo.Pt(1000, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	w.daemon(t, "b")
	w.daemon(t, "far")

	if err := da.RefreshNow(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	neighbors := da.Neighbors()
	if len(neighbors) != 1 || neighbors[0].Device != "b" {
		t.Fatalf("Neighbors = %+v, want only b", neighbors)
	}
	if len(neighbors[0].Technologies) != 1 || neighbors[0].Technologies[0] != radio.Bluetooth {
		t.Fatalf("Technologies = %v", neighbors[0].Technologies)
	}
}

// TestTable3_ServiceDiscovery: "PeerHood detects all the services and
// its attributes available in any PeerHood-capable remote device."
func TestTable3_ServiceDiscovery(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")

	if _, err := db.RegisterService("PeerHoodCommunity", map[string]string{"member": "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	svcs, err := da.ServicesOf("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 || svcs[0].Name != "PeerHoodCommunity" || svcs[0].Attr("member") != "bob" {
		t.Fatalf("ServicesOf(b) = %+v", svcs)
	}
	if got := da.DevicesOffering("PeerHoodCommunity"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("DevicesOffering = %v", got)
	}
	if got := da.DevicesOffering("Nothing"); len(got) != 0 {
		t.Fatalf("DevicesOffering(Nothing) = %v", got)
	}
}

// TestTable3_ServiceSharing: "PeerHood allows applications ... to use
// and register services. The list of all local and remote services can
// be obtained on request."
func TestTable3_ServiceSharing(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	if _, err := da.RegisterService("svc1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := da.RegisterService("svc2", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	local := da.LocalServices()
	if len(local) != 2 || local[0].Name != "svc1" || local[1].Name != "svc2" {
		t.Fatalf("LocalServices = %+v", local)
	}
	if _, err := da.RegisterService("svc1", nil); !errors.Is(err, ErrServiceRegistered) {
		t.Fatalf("duplicate register err = %v", err)
	}
	da.UnregisterService("svc1")
	if got := da.LocalServices(); len(got) != 1 {
		t.Fatalf("after unregister LocalServices = %+v", got)
	}
	// Unregister twice is harmless.
	da.UnregisterService("svc1")
	// Re-register after unregister works (port was freed).
	if _, err := da.RegisterService("svc1", nil); err != nil {
		t.Fatalf("re-register: %v", err)
	}
}

func TestRegisterServiceValidation(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	if _, err := da.RegisterService("bad|name", nil); err == nil {
		t.Error("invalid service name accepted")
	}
}

// TestTable3_ConnectionEstablishment and DataTransmission: connect two
// PeerHood applications and exchange data.
func TestTable3_ConnectAndTransmit(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	ctx := testCtx(t)

	listener, err := db.RegisterService("echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		defer conn.Close()
		msg, err := conn.Recv(ctx)
		if err != nil {
			return
		}
		_ = conn.Send(append([]byte("echo: "), msg...))
	}()

	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	conn, err := da.Connect(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo: hello" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestConnectNoRoute(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "far", geo.Pt(1000, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	w.daemon(t, "far")
	if _, err := da.Connect(testCtx(t), "far", "svc"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

// TestTable3_ActiveMonitoring: "when the monitored device goes out of
// range than application is notified of its disappearance. Also, the
// application is notified when the monitored device approaches."
func TestTable3_ActiveMonitoring(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []MonitorEvent
	cancel := da.Monitor("b", func(ev MonitorEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer cancel()

	waitEvents := func(n int) []MonitorEvent {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			if len(events) >= n {
				out := append([]MonitorEvent(nil), events...)
				mu.Unlock()
				return out
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]MonitorEvent(nil), events...)
	}

	// b walks out of range.
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(1)
	if len(evs) < 1 || evs[0].Device != "b" || evs[0].Appeared {
		t.Fatalf("events after disappearance = %+v, want disappeared(b)", evs)
	}
	// b comes back.
	if err := w.env.SetPowered("b", true); err != nil {
		t.Fatal(err)
	}
	evs = waitEvents(2)
	if len(evs) < 2 || !evs[1].Appeared {
		t.Fatalf("events after return = %+v, want appeared(b)", evs)
	}
}

func TestMonitorCancelStopsEvents(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	cancel := da.Monitor("b", func(MonitorEvent) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	time.Sleep(5 * time.Millisecond) // let the monitor prime
	cancel()
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatalf("callback fired %d times after cancel", count)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	d, err := NewDaemon(Config{Device: "a", Network: w.net})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("second Start = %v, want ErrAlreadyRunning", err)
	}
	d.Stop()
}

// TestBackgroundDiscoveryPopulatesCache verifies the running daemon
// keeps the neighbor table fresh without explicit refreshes — the
// property that makes Table 8's search time near-zero after warmup.
func TestBackgroundDiscoveryPopulatesCache(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	if _, err := db.RegisterService("PeerHoodCommunity", nil); err != nil {
		t.Fatal(err)
	}
	if err := da.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if devs := da.DevicesOffering("PeerHoodCommunity"); len(devs) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("daemon never discovered b's service in the background")
}

func TestDiscoveryDropsDepartedNeighbors(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	w.daemon(t, "b")
	ctx := testCtx(t)
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if len(da.Neighbors()) != 1 {
		t.Fatal("precondition: b discovered")
	}
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if n := da.Neighbors(); len(n) != 0 {
		t.Fatalf("departed neighbor still cached: %+v", n)
	}
	if _, err := da.Neighbor("b"); !errors.Is(err, ErrUnknownNeighbor) {
		t.Fatalf("Neighbor(b) = %v, want ErrUnknownNeighbor", err)
	}
}

func TestMultiTechNeighbor(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth, radio.WLAN)
	da := w.daemon(t, "a")
	w.daemon(t, "b")
	if err := da.RefreshNow(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	n, err := da.Neighbor("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Technologies) != 2 || n.Technologies[0] != radio.Bluetooth || n.Technologies[1] != radio.WLAN {
		t.Fatalf("Technologies = %v, want [bluetooth wlan]", n.Technologies)
	}
}

// TestWLANOnlyNeighborDiscoveredOverWLAN: a neighbor beyond Bluetooth
// range but inside WLAN range appears with WLAN only.
func TestWLANOnlyNeighborDiscoveredOverWLAN(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(50, 0), radio.Bluetooth, radio.WLAN) // beyond BT, inside WLAN
	da := w.daemon(t, "a")
	w.daemon(t, "b")
	if err := da.RefreshNow(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	n, err := da.Neighbor("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Technologies) != 1 || n.Technologies[0] != radio.WLAN {
		t.Fatalf("Technologies = %v, want [wlan]", n.Technologies)
	}
}

func TestLibraryFacade(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	lib := NewLibrary(da)
	ctx := testCtx(t)

	if lib.Device() != "a" || lib.Daemon() != da {
		t.Fatal("library bindings wrong")
	}
	remoteLib := NewLibrary(db)
	listener, err := remoteLib.RegisterService("greet", map[string]string{"hello": "world"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		defer conn.Close()
		_ = conn.Send([]byte("hi"))
	}()

	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	devs := lib.GetDeviceList()
	if len(devs) != 1 || devs[0] != "b" {
		t.Fatalf("GetDeviceList = %v", devs)
	}
	svcs, err := lib.GetServiceList("b")
	if err != nil || len(svcs) != 1 || svcs[0].Name != "greet" {
		t.Fatalf("GetServiceList = %+v, %v", svcs, err)
	}
	if got := lib.DevicesOffering("greet"); len(got) != 1 {
		t.Fatalf("DevicesOffering = %v", got)
	}
	if got := remoteLib.GetLocalServiceList(); len(got) != 1 {
		t.Fatalf("GetLocalServiceList = %+v", got)
	}
	conn, err := lib.Connect(ctx, "b", "greet")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg, err := conn.Recv(ctx)
	if err != nil || string(msg) != "hi" {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
	remoteLib.UnregisterService("greet")
	cancel := lib.Monitor("b", func(MonitorEvent) {})
	cancel()
}

func TestStatsCounters(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	ctx := testCtx(t)

	if got := da.Stats(); got != (Stats{}) {
		t.Fatalf("fresh daemon stats = %+v, want zeros", got)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	s := da.Stats()
	if s.DiscoveryRounds != 1 {
		t.Errorf("DiscoveryRounds = %d, want 1", s.DiscoveryRounds)
	}
	if s.SDPQueriesSent != 1 {
		t.Errorf("SDPQueriesSent = %d, want 1 (one neighbor)", s.SDPQueriesSent)
	}
	if got := db.Stats().SDPQueriesServed; got != 1 {
		t.Errorf("b served %d SDP queries, want 1", got)
	}

	listener, err := db.RegisterService("svc", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if conn, err := listener.Accept(ctx); err == nil {
			conn.Close()
		}
	}()
	conn, err := da.Connect(ctx, "b", "svc")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if got := da.Stats().ConnectsRouted; got != 1 {
		t.Errorf("ConnectsRouted = %d, want 1", got)
	}

	cancel := da.Monitor("b", func(MonitorEvent) {})
	defer cancel()
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := da.Stats().MonitorEvents; got != 1 {
		t.Errorf("MonitorEvents = %d, want 1", got)
	}
}

// TestHistoryOutlivesDepartures: §4.1 — the daemon "collects
// information and stores it for possible future usage"; departed
// devices vanish from the live table but stay in the history.
func TestHistoryOutlivesDepartures(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	if _, err := db.RegisterService("svc", nil); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if len(da.Neighbors()) != 0 {
		t.Fatal("live table should be empty after departure")
	}
	hist := da.History()
	if len(hist) != 1 {
		t.Fatalf("history = %+v, want one sighting", hist)
	}
	s := hist[0]
	if s.Device != "b" || s.Rounds != 2 {
		t.Fatalf("sighting = %+v, want b seen in 2 rounds", s)
	}
	if len(s.Services) != 1 || s.Services[0] != "svc" {
		t.Fatalf("sighting services = %v", s.Services)
	}
	if s.LastSeen < s.FirstSeen {
		t.Fatalf("times inverted: %+v", s)
	}
	got, ok := da.Sighted("b")
	if !ok || got.Device != "b" {
		t.Fatalf("Sighted(b) = %+v, %v", got, ok)
	}
	if _, ok := da.Sighted("never-seen"); ok {
		t.Fatal("Sighted should miss for unknown devices")
	}
}

// TestHistoryAggregatesTechnologies: a device seen over different
// technologies at different times accumulates both.
func TestHistoryAggregatesTechnologies(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth, radio.WLAN)
	da := w.daemon(t, "a")
	w.daemon(t, "b")
	ctx := testCtx(t)
	if err := da.RefreshNow(ctx); err != nil { // both techs in range
		t.Fatal(err)
	}
	// Move b out of Bluetooth range but keep WLAN.
	if err := w.env.SetModel("b", mobility.Static{At: geo.Pt(50, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	s, ok := da.Sighted("b")
	if !ok {
		t.Fatal("b not in history")
	}
	if len(s.Technologies) != 2 {
		t.Fatalf("technologies = %v, want both accumulated", s.Technologies)
	}
}
