package peerhood

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// TestGPRSPluginBridgesThroughProxy: with a configured operator proxy,
// a daemon's GPRS connections cross the bridge (§4.2.3's GPRSPlugin).
func TestGPRSPluginBridgesThroughProxy(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "operator", geo.Pt(0, 0), radio.GPRS)
	w.addStatic(t, "a", geo.Pt(100, 0), radio.GPRS)
	w.addStatic(t, "b", geo.Pt(-100, 0), radio.GPRS)
	proxy, err := netsim.NewProxy(w.net, "operator")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)

	da, err := NewDaemon(Config{Device: "a", Network: w.net, GPRSProxy: "operator"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(da.Stop)
	db := w.daemon(t, "b")
	ctx := testCtx(t)

	listener, err := db.RegisterService("echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		defer conn.Close()
		msg, err := conn.Recv(ctx)
		if err != nil {
			return
		}
		_ = conn.Send(append([]byte("via-proxy:"), msg...))
	}()

	conn, err := da.Connect(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "via-proxy:hello" {
		t.Fatalf("resp = %q", resp)
	}
	if proxy.Relayed() != 1 {
		t.Fatalf("Relayed = %d, want 1 (connection should cross the bridge)", proxy.Relayed())
	}
}

// TestGPRSPluginProxyCoverage: bridged reachability requires both legs
// in coverage.
func TestGPRSPluginProxyCoverage(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "operator", geo.Pt(0, 0), radio.GPRS)
	w.addStatic(t, "a", geo.Pt(1, 0), radio.GPRS)
	w.addStatic(t, "b", geo.Pt(2, 0), radio.GPRS)
	p := NewPlugin(radio.GPRS, w.net, "a", "operator")
	if !p.Reachable("b") {
		t.Fatal("should be reachable with full coverage")
	}
	if err := w.env.SetCoverage("b", false); err != nil {
		t.Fatal(err)
	}
	if p.Reachable("b") {
		t.Fatal("unreachable when callee leg has no coverage")
	}
	if err := w.env.SetCoverage("b", true); err != nil {
		t.Fatal(err)
	}
	if err := w.env.SetCoverage("operator", false); err != nil {
		t.Fatal(err)
	}
	if p.Reachable("b") {
		t.Fatal("unreachable when the proxy itself has no coverage")
	}
}

// TestGPRSPluginDirectWithoutProxy: no proxy configured means direct
// cellular links (the default everywhere else in the suite).
func TestGPRSPluginDirectWithoutProxy(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.GPRS)
	w.addStatic(t, "b", geo.Pt(1e6, 0), radio.GPRS)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	ctx := testCtx(t)
	listener, err := db.RegisterService("echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		conn.Close()
	}()
	conn, err := da.Connect(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}
