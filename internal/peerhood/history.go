package peerhood

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/radio"
)

// Sighting is the accumulated record of one device across discovery
// rounds — §4.1: "PeerHood monitors the immediate neighbors of a PTD,
// collects information and stores it for possible future usage."
// Unlike the neighbor table, history is never pruned when a device
// leaves: it is the daemon's memory of everyone it has ever seen.
type Sighting struct {
	Device ids.DeviceID
	// FirstSeen / LastSeen are modeled environment times.
	FirstSeen time.Duration
	LastSeen  time.Duration
	// Rounds counts the discovery rounds that found the device.
	Rounds int
	// Technologies aggregates every technology the device was ever
	// seen on, preference-ordered.
	Technologies []radio.Technology
	// Services aggregates every service name the device ever
	// advertised.
	Services []ids.ServiceName
}

// history accumulates sightings.
type history struct {
	mu   sync.Mutex
	seen map[ids.DeviceID]*Sighting
}

func newHistory() *history {
	return &history{seen: make(map[ids.DeviceID]*Sighting)}
}

// record merges one discovery-round observation.
func (h *history) record(n *NeighborInfo) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.seen[n.Device]
	if !ok {
		s = &Sighting{Device: n.Device, FirstSeen: n.LastSeen}
		h.seen[n.Device] = s
	}
	s.LastSeen = n.LastSeen
	s.Rounds++
	for _, tech := range n.Technologies {
		if !containsTech(s.Technologies, tech) {
			s.Technologies = append(s.Technologies, tech)
		}
	}
	sortTechs(s.Technologies)
	for _, svc := range n.Services {
		if !containsService(s.Services, svc.Name) {
			s.Services = append(s.Services, svc.Name)
		}
	}
	sort.Slice(s.Services, func(i, j int) bool { return s.Services[i] < s.Services[j] })
}

func (h *history) snapshot() []Sighting {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sighting, 0, len(h.seen))
	for _, s := range h.seen {
		cp := *s
		cp.Technologies = append([]radio.Technology(nil), s.Technologies...)
		cp.Services = append([]ids.ServiceName(nil), s.Services...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

func (h *history) lookup(dev ids.DeviceID) (Sighting, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.seen[dev]
	if !ok {
		return Sighting{}, false
	}
	cp := *s
	cp.Technologies = append([]radio.Technology(nil), s.Technologies...)
	cp.Services = append([]ids.ServiceName(nil), s.Services...)
	return cp, true
}

func containsTech(ts []radio.Technology, t radio.Technology) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func containsService(ss []ids.ServiceName, s ids.ServiceName) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// History returns every device this daemon has ever sighted, sorted by
// device ID. Departed devices stay in the history even after they leave
// the live neighbor table.
func (d *Daemon) History() []Sighting {
	return d.history.snapshot()
}

// Sighted returns the accumulated record of one device, if it was ever
// seen.
func (d *Daemon) Sighted(dev ids.DeviceID) (Sighting, bool) {
	return d.history.lookup(dev)
}
