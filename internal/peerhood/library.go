package peerhood

import (
	"context"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Library is the application-facing interface of PeerHood (§4.2.2). In
// the original system it was a shared library talking to the daemon
// process over a local socket; here it delegates to the in-process
// daemon. Applications built "on top of PeerHood" (chapter 5) should
// only need this type.
type Library struct {
	daemon *Daemon
}

// NewLibrary binds a library to a daemon.
func NewLibrary(d *Daemon) *Library { return &Library{daemon: d} }

// Daemon exposes the underlying daemon for advanced uses.
func (l *Library) Daemon() *Daemon { return l.daemon }

// Device returns the local device ID.
func (l *Library) Device() ids.DeviceID { return l.daemon.Device() }

// GetDeviceList returns the devices currently in the PeerHood
// neighborhood, like the pGetDeviceList call in Figure 9.
func (l *Library) GetDeviceList() []ids.DeviceID {
	neighbors := l.daemon.Neighbors()
	out := make([]ids.DeviceID, 0, len(neighbors))
	for _, n := range neighbors {
		out = append(out, n.Device)
	}
	return out
}

// GetServiceList returns the services a neighbor advertises.
func (l *Library) GetServiceList(dev ids.DeviceID) ([]ServiceDescription, error) {
	return l.daemon.ServicesOf(dev)
}

// GetLocalServiceList returns the services registered locally.
func (l *Library) GetLocalServiceList() []ServiceDescription {
	return l.daemon.LocalServices()
}

// DevicesOffering returns the neighbors advertising a service.
func (l *Library) DevicesOffering(service ids.ServiceName) []ids.DeviceID {
	return l.daemon.DevicesOffering(service)
}

// RegisterService registers a local service (Figure 8) and returns the
// listener to accept connections on.
func (l *Library) RegisterService(name ids.ServiceName, attrs map[string]string) (*netsim.Listener, error) {
	return l.daemon.RegisterService(name, attrs)
}

// UnregisterService removes a local service.
func (l *Library) UnregisterService(name ids.ServiceName) {
	l.daemon.UnregisterService(name)
}

// Connect opens a connection to a service on a neighbor.
func (l *Library) Connect(ctx context.Context, dev ids.DeviceID, service ids.ServiceName) (*netsim.Conn, error) {
	return l.daemon.Connect(ctx, dev, service)
}

// ConnectRobust opens a connection with seamless-connectivity failover.
func (l *Library) ConnectRobust(ctx context.Context, dev ids.DeviceID, service ids.ServiceName) (*RobustConn, error) {
	return l.daemon.ConnectRobust(ctx, dev, service)
}

// Monitor watches a device for appearance/disappearance.
func (l *Library) Monitor(dev ids.DeviceID, fn MonitorFunc) (cancel func()) {
	return l.daemon.Monitor(dev, fn)
}

// Stats returns the daemon's activity counters.
func (l *Library) Stats() Stats { return l.daemon.Stats() }

// LinkQuality returns the daemon's radio-level counters.
func (l *Library) LinkQuality() LinkQuality { return l.daemon.LinkQuality() }

// History returns every device the daemon has ever sighted (§4.1's
// stored neighborhood information).
func (l *Library) History() []Sighting { return l.daemon.History() }
