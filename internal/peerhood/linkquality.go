package peerhood

import (
	"context"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// LinkQuality is a snapshot of the radio substrate as this daemon
// experienced it: how often inquiries ran, how many neighbors they
// surfaced, and how dialing fared. Under fault injection these counters
// are how experiments observe degradation (missed inquiries shrink
// NeighborsSeen per inquiry; link faults raise DialsFailed).
type LinkQuality struct {
	// Inquiries counts completed Discover calls across all plugins.
	Inquiries uint64
	// NeighborsSeen totals the neighbors returned by those inquiries
	// (the same device counts once per sighting).
	NeighborsSeen uint64
	// DialsAttempted counts plugin Dial calls.
	DialsAttempted uint64
	// DialsFailed counts plugin Dial calls that returned an error.
	DialsFailed uint64
}

// linkCounters is the daemon-internal atomic representation.
type linkCounters struct {
	inquiries      atomic.Uint64
	neighborsSeen  atomic.Uint64
	dialsAttempted atomic.Uint64
	dialsFailed    atomic.Uint64
}

func (c *linkCounters) snapshot() LinkQuality {
	return LinkQuality{
		Inquiries:      c.inquiries.Load(),
		NeighborsSeen:  c.neighborsSeen.Load(),
		DialsAttempted: c.dialsAttempted.Load(),
		DialsFailed:    c.dialsFailed.Load(),
	}
}

// LinkQuality returns a snapshot of the daemon's radio-level counters.
func (d *Daemon) LinkQuality() LinkQuality { return d.linkq.snapshot() }

// meteredPlugin wraps a Plugin to account its activity on the owning
// daemon's link-quality counters.
type meteredPlugin struct {
	Plugin
	c *linkCounters
}

func (m *meteredPlugin) Discover(ctx context.Context) ([]ids.DeviceID, error) {
	devs, err := m.Plugin.Discover(ctx)
	if err == nil {
		m.c.inquiries.Add(1)
		m.c.neighborsSeen.Add(uint64(len(devs)))
	}
	return devs, err
}

func (m *meteredPlugin) Dial(ctx context.Context, to ids.DeviceID, port string) (*netsim.Conn, error) {
	m.c.dialsAttempted.Add(1)
	conn, err := m.Plugin.Dial(ctx, to, port)
	if err != nil {
		m.c.dialsFailed.Add(1)
	}
	return conn, err
}

// meter wraps every plugin in the set with the daemon's counters.
func (ps pluginSet) meter(c *linkCounters) pluginSet {
	out := make(pluginSet, len(ps))
	for i, p := range ps {
		out[i] = &meteredPlugin{Plugin: p, c: c}
	}
	return out
}
