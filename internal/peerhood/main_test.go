package peerhood

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaves daemon goroutines
// (inquiry loops, monitors, SDP servers) running after teardown.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
