package peerhood

import (
	"context"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// discoveryPort is the well-known broadcast port WLAN discovery probes
// are sent to, mirroring the thesis's "broadcast-based service
// discovery" for the WLANPlugin.
const discoveryPort = "peerhood.discovery"

// Plugin adapts one network technology to the daemon, like the
// BTPlugin/WLANPlugin/GPRSPlugin of §4.2.3. Implementations are
// stateless beyond their bindings and safe for concurrent use.
type Plugin interface {
	// Technology identifies the plugin.
	Technology() radio.Technology
	// Discover performs one device inquiry and returns the reachable
	// PeerHood-capable neighbors. It blocks for the technology's
	// inquiry duration (scaled).
	Discover(ctx context.Context) ([]ids.DeviceID, error)
	// Dial opens a connection to a port on a neighbor.
	Dial(ctx context.Context, to ids.DeviceID, port string) (*netsim.Conn, error)
	// Reachable reports whether the peer is currently in range.
	Reachable(to ids.DeviceID) bool
}

// NewPlugin returns the plugin for a technology, bound to a device and
// network. For GPRS, a non-empty proxy device routes connections
// through the operator bridge, as §4.2.3 describes.
func NewPlugin(tech radio.Technology, net *netsim.Network, dev ids.DeviceID, gprsProxy ids.DeviceID) Plugin {
	base := basePlugin{tech: tech, net: net, dev: dev}
	switch tech {
	case radio.WLAN:
		return &wlanPlugin{basePlugin: base}
	case radio.GPRS:
		return &gprsPlugin{basePlugin: base, proxy: gprsProxy}
	default:
		return &base
	}
}

// gprsPlugin routes connections through the operator proxy when one is
// configured: "GPRSPlugin also operates over IP connections and uses
// proxy device as a bridge or an intermediate device." Without a proxy
// it degrades to a direct (still high-latency) cellular link.
type gprsPlugin struct {
	basePlugin
	proxy ids.DeviceID
}

var _ Plugin = (*gprsPlugin)(nil)

func (p *gprsPlugin) Dial(ctx context.Context, to ids.DeviceID, port string) (*netsim.Conn, error) {
	if p.proxy == "" {
		return p.basePlugin.Dial(ctx, to, port)
	}
	return p.net.DialViaProxy(ctx, p.dev, p.proxy, to, port)
}

func (p *gprsPlugin) Reachable(to ids.DeviceID) bool {
	env := p.net.Environment()
	if p.proxy == "" {
		return env.Reachable(p.dev, to, radio.GPRS)
	}
	// Bridged reachability: both legs must be in coverage.
	return env.Reachable(p.dev, p.proxy, radio.GPRS) && env.Reachable(p.proxy, to, radio.GPRS)
}

// basePlugin implements inquiry-based discovery: wait out the PHY's
// inquiry window, then report who answered (everyone in range). This is
// how Bluetooth inquiry behaves, and it is also the fallback for GPRS,
// where "discovery" asks the operator proxy for registered peers; the
// GPRS PHY's longer base latency models the proxy hop.
type basePlugin struct {
	tech radio.Technology
	net  *netsim.Network
	dev  ids.DeviceID
}

var _ Plugin = (*basePlugin)(nil)

func (p *basePlugin) Technology() radio.Technology { return p.tech }

func (p *basePlugin) Discover(ctx context.Context) ([]ids.DeviceID, error) {
	env := p.net.Environment()
	phy := env.PHY(p.tech)
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-env.Clock().After(env.Scale().ToReal(phy.InquiryDuration)):
	}
	return env.Neighbors(p.dev, p.tech), nil
}

func (p *basePlugin) Dial(ctx context.Context, to ids.DeviceID, port string) (*netsim.Conn, error) {
	return p.net.Dial(ctx, p.dev, to, p.tech, port)
}

func (p *basePlugin) Reachable(to ids.DeviceID) bool {
	return p.net.Environment().Reachable(p.dev, to, p.tech)
}

// wlanPlugin overrides discovery to also emit a broadcast probe, which
// remote daemons can observe; the probe is what lets a sleeping daemon
// learn about us without running its own inquiry.
type wlanPlugin struct {
	basePlugin
}

var _ Plugin = (*wlanPlugin)(nil)

func (p *wlanPlugin) Discover(ctx context.Context) ([]ids.DeviceID, error) {
	// Best effort: the probe costs one broadcast transfer; failures
	// (e.g. powered off mid-probe) degrade to pure inquiry.
	_, _ = p.net.SendBroadcast(p.dev, radio.WLAN, discoveryPort, []byte("PROBE "+string(p.dev)))
	env := p.net.Environment()
	phy := env.PHY(radio.WLAN)
	// The broadcast already charged one transfer; wait out the rest of
	// the scan window.
	wait := phy.InquiryDuration - phy.TransferTime(len("PROBE ")+len(p.dev))
	if wait < 0 {
		wait = 0
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-env.Clock().After(env.Scale().ToReal(wait)):
	}
	return env.Neighbors(p.dev, radio.WLAN), nil
}

// pluginSet orders plugins by preference (Bluetooth first, as the
// thesis prefers the "cost free" technology).
type pluginSet []Plugin

func newPluginSet(net *netsim.Network, dev ids.DeviceID, techs []radio.Technology, gprsProxy ids.DeviceID) pluginSet {
	ordered := make([]radio.Technology, 0, len(techs))
	seen := make(map[radio.Technology]bool)
	for _, pref := range radio.AllTechnologies() {
		for _, t := range techs {
			if t == pref && !seen[t] {
				ordered = append(ordered, t)
				seen[t] = true
			}
		}
	}
	out := make(pluginSet, 0, len(ordered))
	for _, t := range ordered {
		out = append(out, NewPlugin(t, net, dev, gprsProxy))
	}
	return out
}

// forTech returns the plugin handling a technology, or nil.
func (ps pluginSet) forTech(t radio.Technology) Plugin {
	for _, p := range ps {
		if p.Technology() == t {
			return p
		}
	}
	return nil
}
