package peerhood

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/radio"
)

// TestPassiveDiscoveryViaWLANProbe: a daemon that never runs its own
// discovery round learns about a neighbor the moment that neighbor's
// WLAN plugin broadcasts its discovery probe — the passive half of the
// thesis's broadcast-based service discovery.
func TestPassiveDiscoveryViaWLANProbe(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "prober", geo.Pt(0, 0), radio.WLAN)
	w.addStatic(t, "sleeper", geo.Pt(10, 0), radio.WLAN)
	prober := w.daemon(t, "prober")
	sleeper := w.daemon(t, "sleeper")
	ctx := testCtx(t)

	if _, err := prober.RegisterService("chatty", nil); err != nil {
		t.Fatal(err)
	}
	if len(sleeper.Neighbors()) != 0 {
		t.Fatal("precondition: sleeper knows nobody")
	}
	// The prober runs one active round, which emits the WLAN broadcast.
	if err := prober.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	// The sleeper never called RefreshNow, yet hears the probe and
	// fetches the prober's services.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n, err := sleeper.Neighbor("prober"); err == nil {
			if len(n.Services) != 1 || n.Services[0].Name != "chatty" {
				t.Fatalf("passive neighbor services = %+v", n.Services)
			}
			if len(n.Technologies) != 1 || n.Technologies[0] != radio.WLAN {
				t.Fatalf("passive neighbor technologies = %v", n.Technologies)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("sleeper never learned about the prober from its broadcast")
}

// TestPassiveDiscoveryIgnoresOwnProbe: a daemon must not add itself.
func TestPassiveDiscoveryIgnoresOwnProbe(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "solo", geo.Pt(0, 0), radio.WLAN)
	solo := w.daemon(t, "solo")
	ctx := testCtx(t)
	if err := solo.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if n := solo.Neighbors(); len(n) != 0 {
		t.Fatalf("solo daemon has neighbors: %+v", n)
	}
}

// TestPassiveDiscoveryBluetoothOnlyDaemonUnaffected: devices without a
// WLAN radio neither subscribe nor crash.
func TestPassiveDiscoveryBluetoothOnlyDaemonUnaffected(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "bt", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "wifi", geo.Pt(5, 0), radio.WLAN)
	bt := w.daemon(t, "bt")
	wifi := w.daemon(t, "wifi")
	ctx := testCtx(t)
	if err := wifi.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if n := bt.Neighbors(); len(n) != 0 {
		t.Fatalf("bluetooth-only daemon learned from a WLAN probe: %+v", n)
	}
}
