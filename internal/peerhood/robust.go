package peerhood

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// RobustConn implements PeerHood's seamless connectivity (Table 3):
// when it senses the established connection breaking it finds the best
// possible alternative technology and re-dials, so the application
// keeps talking to the same service.
//
// Semantics: each failover opens a fresh connection to the service, so
// the server observes a new session; a message whose delivery raced the
// link loss may be retransmitted. Request/response protocols (like
// PeerHood Community's) tolerate both.
type RobustConn struct {
	daemon  *Daemon
	dev     ids.DeviceID
	service ids.ServiceName

	mu       sync.Mutex
	conn     *netsim.Conn
	closed   bool
	failures int
}

// maxFailovers bounds reconnection attempts per operation.
const maxFailovers = 3

// ConnectRobust opens a seamless connection to a service on a device.
func (d *Daemon) ConnectRobust(ctx context.Context, dev ids.DeviceID, service ids.ServiceName) (*RobustConn, error) {
	conn, err := d.Connect(ctx, dev, service)
	if err != nil {
		return nil, err
	}
	return &RobustConn{daemon: d, dev: dev, service: service, conn: conn}, nil
}

// Remote returns the peer device.
func (r *RobustConn) Remote() ids.DeviceID { return r.dev }

// Technology returns the technology currently carrying the connection.
func (r *RobustConn) Technology() radio.Technology {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return radio.TechNone
	}
	return r.conn.Technology()
}

// Failovers reports how many times the connection has switched
// technologies or re-dialed.
func (r *RobustConn) Failovers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failures
}

// current returns the live conn, re-dialing if the previous one died.
func (r *RobustConn) current(ctx context.Context) (*netsim.Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, netsim.ErrConnClosed
	}
	if r.conn != nil && r.conn.Alive() {
		return r.conn, nil
	}
	conn, err := r.daemon.Connect(ctx, r.dev, r.service)
	if err != nil {
		return nil, fmt.Errorf("peerhood: seamless reconnect to %s: %w", r.dev, err)
	}
	r.conn = conn
	r.failures++
	return conn, nil
}

// Send transmits a message, failing over to another technology if the
// link breaks.
func (r *RobustConn) Send(ctx context.Context, payload []byte) error {
	var lastErr error
	for attempt := 0; attempt <= maxFailovers; attempt++ {
		conn, err := r.current(ctx)
		if err != nil {
			return err
		}
		err = conn.Send(payload)
		if err == nil {
			return nil
		}
		lastErr = err
		if !errors.Is(err, netsim.ErrLinkLost) {
			return err
		}
	}
	return lastErr
}

// Recv receives the next message, failing over if the link breaks while
// waiting. After a failover the message stream restarts from the new
// session.
func (r *RobustConn) Recv(ctx context.Context) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= maxFailovers; attempt++ {
		conn, err := r.current(ctx)
		if err != nil {
			return nil, err
		}
		msg, err := conn.Recv(ctx)
		if err == nil {
			return msg, nil
		}
		lastErr = err
		if !errors.Is(err, netsim.ErrLinkLost) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Call sends a request and waits for one response, with failover
// retrying the whole exchange — the shape every PeerHood Community
// operation uses.
func (r *RobustConn) Call(ctx context.Context, request []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= maxFailovers; attempt++ {
		conn, err := r.current(ctx)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(request); err != nil {
			lastErr = err
			if errors.Is(err, netsim.ErrLinkLost) {
				continue
			}
			return nil, err
		}
		resp, err := conn.Recv(ctx)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, netsim.ErrLinkLost) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Close shuts the connection down.
func (r *RobustConn) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn != nil {
		_ = r.conn.Close() // already failing over or shutting down; nothing to do with the error
	}
}

// TryUpgrade re-dials the service over a more preferred technology when
// one has become reachable again — the other half of "finds the best
// possible alternative": after falling back to WLAN or GPRS, the
// connection returns to Bluetooth once the peer is back in range. It
// reports whether an upgrade happened. The server observes the upgrade
// as a new session, like any failover.
func (r *RobustConn) TryUpgrade(ctx context.Context) bool {
	r.mu.Lock()
	if r.closed || r.conn == nil || !r.conn.Alive() {
		r.mu.Unlock()
		return false
	}
	current := r.conn.Technology()
	r.mu.Unlock()

	for _, p := range r.daemon.plugins {
		tech := p.Technology()
		if techRank(tech) >= techRank(current) {
			return false // already on the best reachable tier
		}
		if !p.Reachable(r.dev) {
			continue
		}
		conn, err := p.Dial(ctx, r.dev, servicePortPrefix+string(r.service))
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = conn.Close()
			return false
		}
		old := r.conn
		r.conn = conn
		r.failures++
		r.mu.Unlock()
		if old != nil {
			_ = old.Close() // superseded by the upgraded connection
		}
		return true
	}
	return false
}

// techRank orders technologies by preference (lower is better).
func techRank(t radio.Technology) int {
	switch t {
	case radio.Bluetooth:
		return 0
	case radio.WLAN:
		return 1
	case radio.GPRS:
		return 2
	default:
		return 3
	}
}
