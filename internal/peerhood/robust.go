package peerhood

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// RobustConn implements PeerHood's seamless connectivity (Table 3):
// when it senses the established connection breaking it finds the best
// possible alternative technology and re-dials, so the application
// keeps talking to the same service.
//
// Semantics: each failover opens a fresh connection to the service, so
// the server observes a new session; a message whose delivery raced the
// link loss may be retransmitted. Request/response protocols (like
// PeerHood Community's) tolerate both.
//
// Every operation runs under a per-call deadline (RobustOptions.
// CallTimeout) and retries link losses — including re-dial failures —
// with capped exponential backoff. Backoff jitter comes from a private
// rand.Rand seeded from the (local, remote, service) triple, so retry
// schedules are deterministic per connection and independent across
// connections.
type RobustConn struct {
	daemon  *Daemon
	dev     ids.DeviceID
	service ids.ServiceName
	opts    RobustOptions

	rngMu sync.Mutex
	rng   *rand.Rand

	// exMu serializes Call exchanges: a request/response pair owns the
	// session until its reply (or failure) lands, so concurrent Calls
	// can never read each other's responses.
	exMu sync.Mutex

	mu       sync.Mutex
	conn     *netsim.Conn
	closed   bool
	failures int
}

// ErrCallTimeout is returned when an operation exhausts its per-call
// deadline (RobustOptions.CallTimeout), including time spent backing
// off and re-dialing.
var ErrCallTimeout = errors.New("peerhood: call deadline exceeded")

// RobustOptions tunes RobustConn's retry behavior. Durations are in
// modeled time.
type RobustOptions struct {
	// MaxAttempts is the total number of tries per operation (first
	// attempt included).
	MaxAttempts int
	// BackoffBase is the nominal delay before the first retry; each
	// further retry doubles it.
	BackoffBase time.Duration
	// BackoffCap bounds the nominal delay.
	BackoffCap time.Duration
	// CallTimeout bounds one Send/Recv/Call including all retries and
	// backoff waits. Zero disables the deadline.
	CallTimeout time.Duration
}

// DefaultRobustOptions returns the options ConnectRobust uses.
func DefaultRobustOptions() RobustOptions {
	return RobustOptions{
		MaxAttempts: 4,
		BackoffBase: 250 * time.Millisecond,
		BackoffCap:  4 * time.Second,
		CallTimeout: 30 * time.Second,
	}
}

func (o RobustOptions) withDefaults() RobustOptions {
	def := DefaultRobustOptions()
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = def.MaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = def.BackoffBase
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = def.BackoffCap
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0
	}
	return o
}

// ConnectRobust opens a seamless connection to a service on a device
// with default retry options.
func (d *Daemon) ConnectRobust(ctx context.Context, dev ids.DeviceID, service ids.ServiceName) (*RobustConn, error) {
	return d.ConnectRobustWith(ctx, dev, service, DefaultRobustOptions())
}

// ConnectRobustWith opens a seamless connection with explicit retry
// options. The initial dial is eager: it fails fast rather than
// retrying, so callers learn immediately when a peer is unreachable.
func (d *Daemon) ConnectRobustWith(ctx context.Context, dev ids.DeviceID, service ids.ServiceName, opts RobustOptions) (*RobustConn, error) {
	conn, err := d.Connect(ctx, dev, service)
	if err != nil {
		return nil, err
	}
	return &RobustConn{
		daemon:  d,
		dev:     dev,
		service: service,
		opts:    opts.withDefaults(),
		rng:     rand.New(rand.NewSource(robustSeed(d.cfg.Device, dev, service))),
		conn:    conn,
	}, nil
}

// robustSeed derives a per-connection jitter seed from the endpoint
// identity, so retry schedules replay under the same topology.
func robustSeed(local, remote ids.DeviceID, service ids.ServiceName) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(local))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(remote))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(service))
	return int64(h.Sum64())
}

// Remote returns the peer device.
func (r *RobustConn) Remote() ids.DeviceID { return r.dev }

// Technology returns the technology currently carrying the connection.
func (r *RobustConn) Technology() radio.Technology {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return radio.TechNone
	}
	return r.conn.Technology()
}

// Failovers reports how many times the connection has switched
// technologies or re-dialed.
func (r *RobustConn) Failovers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failures
}

// current returns the live conn, re-dialing if the previous one died.
func (r *RobustConn) current(ctx context.Context) (*netsim.Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, netsim.ErrConnClosed
	}
	if r.conn != nil && r.conn.Alive() {
		return r.conn, nil
	}
	if r.conn != nil {
		// Dead session: drop our hold before replacing it, so the pair
		// can recycle. We are its sole releaser — Close and poison both
		// clear r.conn under the lock before releasing.
		r.conn.Abort()
		r.conn = nil
	}
	conn, err := r.daemon.Connect(ctx, r.dev, r.service)
	if err != nil {
		return nil, fmt.Errorf("peerhood: seamless reconnect to %s: %w", r.dev, err)
	}
	r.conn = conn
	r.failures++
	return conn, nil
}

// backoffDelay returns the jittered wait before retry number `retry`
// (0-based): nominal = min(base<<retry, cap), drawn uniformly from
// [nominal/2, nominal] (equal jitter keeps a floor so retries never
// stampede, while desynchronizing concurrent connections).
func (r *RobustConn) backoffDelay(retry int) time.Duration {
	d := r.opts.BackoffBase
	for i := 0; i < retry && d < r.opts.BackoffCap; i++ {
		d *= 2
	}
	if d > r.opts.BackoffCap {
		d = r.opts.BackoffCap
	}
	half := d / 2
	r.rngMu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.rngMu.Unlock()
	return half + jitter
}

// deadlineContext derives the per-operation context. The deadline runs
// on the environment's clock (so manual clocks drive it in tests) and
// cancels with ErrCallTimeout as the cause.
func (r *RobustConn) deadlineContext(ctx context.Context) (context.Context, func()) {
	if r.opts.CallTimeout <= 0 {
		return ctx, func() {}
	}
	env := r.daemon.cfg.Network.Environment()
	octx, cancel := context.WithCancelCause(ctx)
	done := make(chan struct{})
	go func() {
		select {
		case <-env.Clock().After(realTimeout(env, r.opts.CallTimeout)):
			cancel(ErrCallTimeout)
		case <-done:
		}
	}()
	return octx, func() {
		close(done)
		cancel(context.Canceled)
	}
}

// resolveErr maps an operation failure to what the caller should see:
// when the per-call deadline is what stopped us, report ErrCallTimeout
// instead of the incidental context or link error.
func (r *RobustConn) resolveErr(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); errors.Is(cause, ErrCallTimeout) {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrCallTimeout) {
			return fmt.Errorf("%w (budget %v, last error: %v)", ErrCallTimeout, r.opts.CallTimeout, err)
		}
		return fmt.Errorf("%w (budget %v)", ErrCallTimeout, r.opts.CallTimeout)
	}
	return err
}

// waitBackoff sleeps the jittered delay for the given retry on the
// environment clock, aborting early if the deadline fires.
func (r *RobustConn) waitBackoff(ctx context.Context, retry int) error {
	env := r.daemon.cfg.Network.Environment()
	d := r.backoffDelay(retry)
	select {
	case <-env.Clock().After(env.Scale().ToReal(d)):
		return nil
	case <-ctx.Done():
		return r.resolveErr(ctx, context.Cause(ctx))
	}
}

// do runs one operation under the retry/backoff/deadline policy. Link
// losses — from the operation or from re-dialing — are retried after a
// backoff; every other error is final.
func (r *RobustConn) do(ctx context.Context, op func(ctx context.Context, conn *netsim.Conn) ([]byte, error)) ([]byte, error) {
	octx, stop := r.deadlineContext(ctx)
	defer stop()
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := r.waitBackoff(octx, attempt-1); err != nil {
				return nil, err
			}
		}
		conn, err := r.current(octx)
		if err != nil {
			if errors.Is(err, netsim.ErrConnClosed) || octx.Err() != nil {
				return nil, r.resolveErr(octx, err)
			}
			lastErr = err // re-dial failed: peer may come back, retry
			continue
		}
		out, err := op(octx, conn)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !errors.Is(err, netsim.ErrLinkLost) {
			return nil, r.resolveErr(octx, err)
		}
	}
	return nil, r.resolveErr(octx, lastErr)
}

// Send transmits a message, failing over to another technology if the
// link breaks.
func (r *RobustConn) Send(ctx context.Context, payload []byte) error {
	_, err := r.do(ctx, func(_ context.Context, conn *netsim.Conn) ([]byte, error) {
		return nil, conn.Send(payload)
	})
	return err
}

// Recv receives the next message, failing over if the link breaks while
// waiting. After a failover the message stream restarts from the new
// session.
func (r *RobustConn) Recv(ctx context.Context) ([]byte, error) {
	return r.do(ctx, func(octx context.Context, conn *netsim.Conn) ([]byte, error) {
		return conn.Recv(octx)
	})
}

// Call sends a request and waits for one response, with failover
// retrying the whole exchange — the shape every PeerHood Community
// operation uses. Calls are serialized per connection: a concurrent
// Call waits for the in-flight exchange rather than interleaving with
// it, which would pair requests with the wrong responses. Raw
// Send/Recv remain unserialized for streaming protocols.
func (r *RobustConn) Call(ctx context.Context, request []byte) ([]byte, error) {
	r.exMu.Lock()
	defer r.exMu.Unlock()
	out, err := r.do(ctx, func(octx context.Context, conn *netsim.Conn) ([]byte, error) {
		if err := conn.Send(request); err != nil {
			return nil, err
		}
		return conn.Recv(octx)
	})
	if err != nil {
		// The exchange is poisoned: a reply may still be in flight (a
		// stalled or slow peer answering after our deadline), and the
		// next Call would read it as its own response. Discard the
		// session; the next exchange re-dials fresh.
		r.poison()
	}
	return out, err
}

// poison drops the current session without closing the RobustConn.
func (r *RobustConn) poison() {
	r.mu.Lock()
	conn := r.conn
	r.conn = nil
	r.mu.Unlock()
	if conn != nil {
		conn.Abort()
	}
}

// Close shuts the connection down. It clears r.conn so no later
// poison or upgrade can release the same session twice — each
// *netsim.Conn gets exactly one Close/Abort from its one owner.
func (r *RobustConn) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn != nil {
		_ = r.conn.Close() // already failing over or shutting down; nothing to do with the error
		r.conn = nil
	}
}

// TryUpgrade re-dials the service over a more preferred technology when
// one has become reachable again — the other half of "finds the best
// possible alternative": after falling back to WLAN or GPRS, the
// connection returns to Bluetooth once the peer is back in range. It
// reports whether an upgrade happened. The server observes the upgrade
// as a new session, like any failover.
func (r *RobustConn) TryUpgrade(ctx context.Context) bool {
	r.mu.Lock()
	if r.closed || r.conn == nil || !r.conn.Alive() {
		r.mu.Unlock()
		return false
	}
	current := r.conn.Technology()
	r.mu.Unlock()

	for _, p := range r.daemon.plugins {
		tech := p.Technology()
		if techRank(tech) >= techRank(current) {
			return false // already on the best reachable tier
		}
		if !p.Reachable(r.dev) {
			continue
		}
		conn, err := p.Dial(ctx, r.dev, servicePortPrefix+string(r.service))
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = conn.Close()
			return false
		}
		old := r.conn
		r.conn = conn
		r.failures++
		r.mu.Unlock()
		if old != nil {
			_ = old.Close() // superseded by the upgraded connection
		}
		return true
	}
	return false
}

// techRank orders technologies by preference (lower is better).
func techRank(t radio.Technology) int {
	switch t {
	case radio.Bluetooth:
		return 0
	case radio.WLAN:
		return 1
	case radio.GPRS:
		return 2
	default:
		return 3
	}
}
