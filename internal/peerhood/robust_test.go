package peerhood

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// echoService runs a trivial request/response server on a daemon: for
// every accepted connection it answers each message with "ok:<msg>".
func echoService(t *testing.T, d *Daemon, name ids.ServiceName) {
	t.Helper()
	listener, err := d.RegisterService(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		for {
			conn, err := listener.Accept(ctx)
			if err != nil {
				return
			}
			go func(c *netsim.Conn) {
				defer c.Close()
				for {
					msg, err := c.Recv(ctx)
					if err != nil {
						return
					}
					if err := c.Send(append([]byte("ok:"), msg...)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// TestTable3_SeamlessConnectivity: "When PeerHood senses the breaking
// or weakening of the established connection, it tries to find the
// best possible alternative for that breaking connection." Here the
// Bluetooth link dies (peer leaves BT range but stays in WLAN range)
// and the robust connection fails over to WLAN.
func TestTable3_SeamlessConnectivity(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth, radio.WLAN)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}

	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Technology() != radio.Bluetooth {
		t.Fatalf("initial technology = %v, want bluetooth (preference order)", rc.Technology())
	}
	resp, err := rc.Call(ctx, []byte("one"))
	if err != nil || string(resp) != "ok:one" {
		t.Fatalf("Call = %q, %v", resp, err)
	}

	// Break Bluetooth only: move b to 50 m — outside BT (10 m), inside
	// WLAN (91 m).
	if err := w.env.SetModel("b", mobility.Static{At: geo.Pt(50, 0)}); err != nil {
		t.Fatal(err)
	}
	// Wait for the link watchdog to kill the BT conn.
	deadline := time.Now().Add(5 * time.Second)
	for rc.Failovers() == 0 && time.Now().Before(deadline) {
		resp, err := rc.Call(ctx, []byte("two"))
		if err == nil && string(resp) == "ok:two" && rc.Technology() == radio.WLAN {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rc.Technology() != radio.WLAN {
		t.Fatalf("technology after failover = %v, want wlan", rc.Technology())
	}
	if rc.Failovers() == 0 {
		t.Fatal("no failover recorded")
	}
	resp, err = rc.Call(ctx, []byte("three"))
	if err != nil || string(resp) != "ok:three" {
		t.Fatalf("Call after failover = %q, %v", resp, err)
	}
}

func TestRobustConnCloseStopsUse(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if err := rc.Send(ctx, []byte("x")); err == nil {
		t.Fatal("Send after Close should fail")
	}
	if _, err := rc.Recv(ctx); err == nil {
		t.Fatal("Recv after Close should fail")
	}
}

func TestRobustConnFailsWhenPeerGoneEverywhere(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := w.env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	// Every path is gone; Call must eventually error rather than hang.
	callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := rc.Call(callCtx, []byte("x")); err != nil {
			return // expected failure
		}
	}
	t.Fatal("Call kept succeeding with peer powered off")
}

// Concurrent Calls on one RobustConn must never pair a request with
// another caller's response, even while link faults force failovers
// mid-storm. Exchange serialization plus the per-conn fault plan makes
// every reply either match its request or fail cleanly.
func TestRobustConcurrentCallsStayPaired(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth, radio.WLAN)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)

	// A loss plan with a shallow retransmission budget forces periodic
	// ErrLinkLost resets, so the storm exercises failover re-dials too.
	w.net.SetFaults(faults.New(77).SetLink(faults.LinkProfile{
		Loss:           0.12,
		MaxRetransmits: 2,
	}))

	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const callers, perCaller = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				req := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := rc.Call(ctx, []byte(req))
				if err != nil {
					continue // faults may exhaust the retry budget; mismatches are the bug
				}
				if string(resp) != "ok:"+req {
					errs <- fmt.Errorf("call %s got response %q", req, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRobustSendRecvStream(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 5; i++ {
		if err := rc.Send(ctx, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
		got, err := rc.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := "ok:" + string(byte('0'+i)); string(got) != want {
			t.Fatalf("Recv = %q, want %q", got, want)
		}
	}
	if rc.Remote() != "b" {
		t.Fatalf("Remote = %v", rc.Remote())
	}
}

// TestRobustConnUpgradesBackToBluetooth: after failing over to WLAN,
// the connection returns to Bluetooth once the peer is in range again.
func TestRobustConnUpgradesBackToBluetooth(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(50, 0), radio.Bluetooth, radio.WLAN) // WLAN only at 50 m
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)

	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Technology() != radio.WLAN {
		t.Fatalf("initial tech = %v, want wlan (out of BT range)", rc.Technology())
	}
	// No upgrade available yet.
	if rc.TryUpgrade(ctx) {
		t.Fatal("upgrade reported with Bluetooth unreachable")
	}
	// b walks back into Bluetooth range.
	if err := w.env.SetModel("b", mobility.Static{At: geo.Pt(5, 0)}); err != nil {
		t.Fatal(err)
	}
	if !rc.TryUpgrade(ctx) {
		t.Fatal("upgrade did not happen with Bluetooth reachable")
	}
	if rc.Technology() != radio.Bluetooth {
		t.Fatalf("tech after upgrade = %v, want bluetooth", rc.Technology())
	}
	// The conversation continues on the upgraded link.
	resp, err := rc.Call(ctx, []byte("post-upgrade"))
	if err != nil || string(resp) != "ok:post-upgrade" {
		t.Fatalf("Call after upgrade = %q, %v", resp, err)
	}
}

func TestTryUpgradeNoOpWhenAlreadyBest(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth, radio.WLAN)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth, radio.WLAN)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Technology() != radio.Bluetooth {
		t.Fatalf("tech = %v", rc.Technology())
	}
	if rc.TryUpgrade(ctx) {
		t.Fatal("upgrade from Bluetooth should be a no-op")
	}
	if rc.Failovers() != 0 {
		t.Fatal("no-op upgrade bumped failover count")
	}
}

func TestTryUpgradeClosedConn(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	echoService(t, db, "echo")
	ctx := testCtx(t)
	rc, err := da.ConnectRobust(ctx, "b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if rc.TryUpgrade(ctx) {
		t.Fatal("upgrade on closed conn")
	}
}
