package peerhood

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
)

// TestSDPServerIgnoresGarbage: a client sending a non-LIST request gets
// no service list and the daemon keeps serving others.
func TestSDPServerIgnoresGarbage(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	if _, err := db.RegisterService("svc", nil); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	// Hand-roll a hostile SDP request.
	conn, err := w.net.Dial(ctx, "a", "b", radio.Bluetooth, sdpPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("EXPLOIT")); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := conn.Recv(shortCtx); err == nil {
		t.Fatal("garbage request got a response")
	}
	conn.Close()

	// The daemon still answers proper discovery afterwards.
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if svcs, err := da.ServicesOf("b"); err != nil || len(svcs) != 1 {
		t.Fatalf("post-garbage discovery: %+v, %v", svcs, err)
	}
}

// TestSDPHalfOpenClientTimesOut: a client that connects and never sends
// must not wedge the daemon.
func TestSDPHalfOpenClientTimesOut(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "a", geo.Pt(0, 0), radio.Bluetooth)
	w.addStatic(t, "b", geo.Pt(5, 0), radio.Bluetooth)
	da := w.daemon(t, "a")
	db := w.daemon(t, "b")
	if _, err := db.RegisterService("svc", nil); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	// Half-open: dial SDP and go silent.
	conn, err := w.net.Dial(ctx, "a", "b", radio.Bluetooth, sdpPort)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Discovery still works in parallel.
	if err := da.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	if svcs, err := da.ServicesOf("b"); err != nil || len(svcs) != 1 {
		t.Fatalf("discovery with half-open SDP conn pending: %+v, %v", svcs, err)
	}
}

// TestSDPAnswersConcurrentQueries: several daemons discover one target
// at once.
func TestSDPAnswersConcurrentQueries(t *testing.T) {
	w := newWorld(t)
	w.addStatic(t, "target", geo.Pt(0, 0), radio.Bluetooth)
	target := w.daemon(t, "target")
	if _, err := target.RegisterService("popular", nil); err != nil {
		t.Fatal(err)
	}
	const askers = 5
	daemons := make([]*Daemon, askers)
	for i := 0; i < askers; i++ {
		id := ids.DeviceIDf("asker-%d", i)
		w.addStatic(t, id, geo.Pt(float64(i%3+1), float64(i/3)), radio.Bluetooth)
		daemons[i] = w.daemon(t, id)
	}
	ctx := testCtx(t)
	errs := make(chan error, askers)
	for _, d := range daemons {
		d := d
		go func() { errs <- d.RefreshNow(ctx) }()
	}
	for i := 0; i < askers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range daemons {
		if svcs, err := d.ServicesOf("target"); err != nil || len(svcs) != 1 {
			t.Fatalf("asker %d: %+v, %v", i, svcs, err)
		}
	}
	if got := target.Stats().SDPQueriesServed; got < askers {
		t.Fatalf("target served %d SDP queries, want >= %d", got, askers)
	}
}
