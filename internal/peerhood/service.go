// Package peerhood reimplements the PeerHood middleware of the thesis
// (chapter 4): a per-device daemon (PHD) that continuously discovers
// neighboring devices and the services they register, an
// application-facing Library, and one plugin per network technology
// (Bluetooth, WLAN, GPRS). Applications register named services, obtain
// neighbor/service lists from the daemon's cache, connect to remote
// services, monitor devices for appearance/disappearance, and keep
// conversations alive across technology switches (seamless
// connectivity) — the seven functionality rows of Table 3.
//
// The original PHD was a separate process reached over a local socket;
// here daemon and application share a process and the Library calls the
// daemon directly. The boundary (and the information that crosses it)
// is preserved; only the IPC hop is elided.
package peerhood

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
)

// ServiceDescription describes one service registered in a PeerHood
// daemon, as returned by service discovery.
type ServiceDescription struct {
	Name       ids.ServiceName
	Attributes map[string]string
}

// Attr returns an attribute value or "".
func (s ServiceDescription) Attr(key string) string { return s.Attributes[key] }

// Clone returns a deep copy.
func (s ServiceDescription) Clone() ServiceDescription {
	out := ServiceDescription{Name: s.Name}
	if s.Attributes != nil {
		out.Attributes = make(map[string]string, len(s.Attributes))
		for k, v := range s.Attributes {
			out.Attributes[k] = v
		}
	}
	return out
}

// String implements fmt.Stringer.
func (s ServiceDescription) String() string {
	if len(s.Attributes) == 0 {
		return string(s.Name)
	}
	return fmt.Sprintf("%s%v", s.Name, s.Attributes)
}

// encodeServices serializes service descriptions for the SDP exchange.
// Format: one service per line, "name|k=v;k=v". Names and attributes
// must not contain the delimiter characters; Validate enforces that at
// registration time.
func encodeServices(svcs []ServiceDescription) []byte {
	var b strings.Builder
	for _, s := range svcs {
		b.WriteString(string(s.Name))
		b.WriteByte('|')
		keys := make([]string, 0, len(s.Attributes))
		for k := range s.Attributes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(s.Attributes[k])
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// decodeServices parses the SDP wire format.
func decodeServices(data []byte) ([]ServiceDescription, error) {
	var out []ServiceDescription
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		name, attrPart, found := strings.Cut(line, "|")
		if !found {
			return nil, fmt.Errorf("peerhood: malformed service line %q", line)
		}
		svc := ServiceDescription{Name: ids.ServiceName(name), Attributes: map[string]string{}}
		if attrPart != "" {
			for _, pair := range strings.Split(attrPart, ";") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					return nil, fmt.Errorf("peerhood: malformed attribute %q in %q", pair, line)
				}
				svc.Attributes[k] = v
			}
		}
		if !svc.Name.Valid() {
			return nil, fmt.Errorf("peerhood: invalid service name %q", name)
		}
		out = append(out, svc)
	}
	return out, nil
}

// validateService checks that a service description survives the wire
// format round trip.
func validateService(s ServiceDescription) error {
	if !s.Name.Valid() || strings.ContainsAny(string(s.Name), "|;=") {
		return fmt.Errorf("peerhood: invalid service name %q", s.Name)
	}
	for k, v := range s.Attributes {
		if k == "" || strings.ContainsAny(k, "|;=\n") || strings.ContainsAny(v, "|;\n") {
			return fmt.Errorf("peerhood: invalid attribute %q=%q", k, v)
		}
	}
	return nil
}

// ErrNoService reports that a device does not offer the requested
// service.
var ErrNoService = errors.New("peerhood: service not offered by device")
