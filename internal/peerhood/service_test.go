package peerhood

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []ServiceDescription{
		{Name: "PeerHoodCommunity", Attributes: map[string]string{"member": "alice", "version": "0.2"}},
		{Name: "FitnessSystem", Attributes: nil},
	}
	out, err := decodeServices(encodeServices(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d services, want 2", len(out))
	}
	if out[0].Name != "PeerHoodCommunity" || out[0].Attr("member") != "alice" || out[0].Attr("version") != "0.2" {
		t.Fatalf("first service = %+v", out[0])
	}
	if out[1].Name != "FitnessSystem" || len(out[1].Attributes) != 0 {
		t.Fatalf("second service = %+v", out[1])
	}
}

func TestEncodeEmpty(t *testing.T) {
	out, err := decodeServices(encodeServices(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d services from empty, want 0", len(out))
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, bad := range []string{"noseparator", "name|k"} {
		if _, err := decodeServices([]byte(bad)); err == nil {
			t.Errorf("decodeServices(%q) should fail", bad)
		}
	}
}

func TestValidateService(t *testing.T) {
	tests := []struct {
		name string
		svc  ServiceDescription
		ok   bool
	}{
		{"plain", ServiceDescription{Name: "PeerHoodCommunity"}, true},
		{"with attrs", ServiceDescription{Name: "x", Attributes: map[string]string{"a": "b"}}, true},
		{"empty name", ServiceDescription{Name: ""}, false},
		{"pipe in name", ServiceDescription{Name: "a|b"}, false},
		{"semicolon in name", ServiceDescription{Name: "a;b"}, false},
		{"equals in attr key", ServiceDescription{Name: "x", Attributes: map[string]string{"a=b": "c"}}, false},
		{"newline in attr value", ServiceDescription{Name: "x", Attributes: map[string]string{"a": "b\nc"}}, false},
		{"empty attr key", ServiceDescription{Name: "x", Attributes: map[string]string{"": "v"}}, false},
		{"equals in value ok", ServiceDescription{Name: "x", Attributes: map[string]string{"a": "b=c"}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateService(tt.svc)
			if (err == nil) != tt.ok {
				t.Fatalf("validateService(%+v) err = %v, want ok=%v", tt.svc, err, tt.ok)
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 32 || strings.ContainsRune("|;=\n\r\t", r) {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return "x"
		}
		return s
	}
	prop := func(name, k, v string) bool {
		svc := ServiceDescription{
			Name:       ids.ServiceName(clean(name)),
			Attributes: map[string]string{clean(k): clean(v)},
		}
		if err := validateService(svc); err != nil {
			return false
		}
		out, err := decodeServices(encodeServices([]ServiceDescription{svc}))
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].Name == svc.Name && out[0].Attr(clean(k)) == clean(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceClone(t *testing.T) {
	orig := ServiceDescription{Name: "s", Attributes: map[string]string{"k": "v"}}
	c := orig.Clone()
	c.Attributes["k"] = "mutated"
	if orig.Attr("k") != "v" {
		t.Fatal("Clone aliased the attribute map")
	}
}

func TestServiceString(t *testing.T) {
	if got := (ServiceDescription{Name: "s"}).String(); got != "s" {
		t.Fatalf("String = %q", got)
	}
	withAttrs := ServiceDescription{Name: "s", Attributes: map[string]string{"k": "v"}}
	if got := withAttrs.String(); !strings.Contains(got, "k:v") {
		t.Fatalf("String = %q, want attributes included", got)
	}
}
