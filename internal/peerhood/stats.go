package peerhood

import "sync/atomic"

// Stats are monotonic counters describing a daemon's activity,
// useful for tools and experiments that want to see what the
// middleware did on the device's behalf.
type Stats struct {
	// DiscoveryRounds counts completed discovery rounds.
	DiscoveryRounds uint64
	// SDPQueriesServed counts service-discovery requests answered for
	// remote daemons.
	SDPQueriesServed uint64
	// SDPQueriesSent counts service-discovery requests this daemon
	// issued.
	SDPQueriesSent uint64
	// MonitorEvents counts appearance/disappearance callbacks fired.
	MonitorEvents uint64
	// ConnectsRouted counts application connections dialed through
	// Connect (including seamless re-dials).
	ConnectsRouted uint64
}

// statCounters is the daemon-internal atomic representation.
type statCounters struct {
	discoveryRounds  atomic.Uint64
	sdpQueriesServed atomic.Uint64
	sdpQueriesSent   atomic.Uint64
	monitorEvents    atomic.Uint64
	connectsRouted   atomic.Uint64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		DiscoveryRounds:  c.discoveryRounds.Load(),
		SDPQueriesServed: c.sdpQueriesServed.Load(),
		SDPQueriesSent:   c.sdpQueriesSent.Load(),
		MonitorEvents:    c.monitorEvents.Load(),
		ConnectsRouted:   c.connectsRouted.Load(),
	}
}

// Stats returns a snapshot of the daemon's activity counters.
func (d *Daemon) Stats() Stats { return d.stats.snapshot() }
