// Package profile implements the user-profile side of PeerHood
// Community: profiles with personal information and interests, profile
// comments and visitor records, message inbox/outbox, trusted friends
// and shared content — everything the Profiles and Trusted Friends
// sections of Table 7 need, including support for multiple profiles per
// device behind a username/password login.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/interest"
)

// Comment is one profile comment left by another member (Figure 14).
type Comment struct {
	From ids.MemberID `json:"from"`
	Text string       `json:"text"`
	At   time.Time    `json:"at"`
}

// Visit records that a member viewed this profile (Figure 13: "the
// remote server writes the name of the requesting client as the
// profile visitor").
type Visit struct {
	By ids.MemberID `json:"by"`
	At time.Time    `json:"at"`
}

// Message is one mail message (Figure 17).
type Message struct {
	From    ids.MemberID `json:"from"`
	To      ids.MemberID `json:"to"`
	Subject string       `json:"subject"`
	Body    string       `json:"body"`
	At      time.Time    `json:"at"`
	Read    bool         `json:"read"`
}

// ContentItem is one shared file (Figure 16).
type ContentItem struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Profile is one member's profile. Profiles are value types inside a
// Store; mutate them through the Store so access stays synchronized.
type Profile struct {
	Member   ids.MemberID `json:"member"`
	FullName string       `json:"full_name"`
	Location string       `json:"location"`
	About    string       `json:"about"`

	Interests []string       `json:"interests"`
	Comments  []Comment      `json:"comments"`
	Visitors  []Visit        `json:"visitors"`
	Trusted   []ids.MemberID `json:"trusted"`
	Shared    []ContentItem  `json:"shared"`
	Inbox     []Message      `json:"inbox"`
	Outbox    []Message      `json:"outbox"`
}

// clone deep-copies a profile.
func (p *Profile) clone() Profile {
	out := *p
	out.Interests = append([]string(nil), p.Interests...)
	out.Comments = append([]Comment(nil), p.Comments...)
	out.Visitors = append([]Visit(nil), p.Visitors...)
	out.Trusted = append([]ids.MemberID(nil), p.Trusted...)
	out.Shared = append([]ContentItem(nil), p.Shared...)
	out.Inbox = append([]Message(nil), p.Inbox...)
	out.Outbox = append([]Message(nil), p.Outbox...)
	return out
}

// IsTrusted reports whether a member is on the trusted-friends list.
func (p *Profile) IsTrusted(m ids.MemberID) bool {
	for _, tf := range p.Trusted {
		if tf == m {
			return true
		}
	}
	return false
}

// HasInterest reports whether the profile lists a (normalized)
// interest.
func (p *Profile) HasInterest(term string) bool {
	n := interest.Normalize(term)
	for _, i := range p.Interests {
		if i == n {
			return true
		}
	}
	return false
}

// UnreadCount returns the number of unread inbox messages.
func (p *Profile) UnreadCount() int {
	n := 0
	for _, m := range p.Inbox {
		if !m.Read {
			n++
		}
	}
	return n
}

// account pairs a profile with its login credential.
type account struct {
	passwordHash string
	profile      Profile
}

func hashPassword(pw string) string {
	sum := sha256.Sum256([]byte("peerhood-community:" + pw))
	return hex.EncodeToString(sum[:])
}

// sortedMembers returns map keys in order.
func sortedMembers(m map[ids.MemberID]*account) []ids.MemberID {
	out := make([]ids.MemberID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Errors returned by the store.
var (
	ErrNoSuchMember  = fmt.Errorf("profile: no such member")
	ErrBadCredential = fmt.Errorf("profile: wrong username or password")
	ErrMemberExists  = fmt.Errorf("profile: member already exists")
	ErrNotLoggedIn   = fmt.Errorf("profile: not logged in")
)
