package profile

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/vtime"
)

// Store holds every profile on one device ("Support for Multiple
// Profiles", Table 7) and mediates all mutation. It is safe for
// concurrent use — the device's server goroutines write comments and
// messages into it while the local user edits it.
type Store struct {
	mu       sync.Mutex
	accounts map[ids.MemberID]*account
	active   ids.MemberID // logged-in member, or ""
	now      func() time.Time
	// epoch counts wire-visible mutations: account lifecycle, login
	// state, and every profile field that encodeProfile or the interest
	// list handlers put on the wire. Bookkeeping that never leaves the
	// device (visits, inbox/outbox, read marks) does not bump it, so a
	// remote peer's cached view stays valid across profile views and
	// message deliveries. Delta-synchronizing clients compare epochs to
	// skip re-fetching unchanged state.
	epoch uint64
}

// NewStore returns an empty store. The now function stamps comments,
// visits and messages; nil means the real clock. Simulated devices
// must pass their environment's vtime clock so stamps are
// reproducible.
func NewStore(now func() time.Time) *Store {
	if now == nil {
		now = vtime.Real().Now
	}
	return &Store{accounts: make(map[ids.MemberID]*account), now: now}
}

// CreateAccount registers a new member with a password and blank
// profile.
func (s *Store) CreateAccount(member ids.MemberID, password string) error {
	if !member.Valid() {
		return fmt.Errorf("profile: invalid member id %q", member)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[member]; ok {
		return fmt.Errorf("%w: %q", ErrMemberExists, member)
	}
	s.accounts[member] = &account{
		passwordHash: hashPassword(password),
		profile:      Profile{Member: member},
	}
	s.epoch++
	return nil
}

// Epoch returns the store's wire-visible mutation counter. It is
// monotonic; equal epochs guarantee every remotely observable answer
// (interest lists, member lists, encoded profiles) is unchanged.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Login authenticates and makes the member the active profile.
func (s *Store) Login(member ids.MemberID, password string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[member]
	if !ok {
		return fmt.Errorf("%w: %q", ErrBadCredential, member)
	}
	if subtle.ConstantTimeCompare([]byte(acct.passwordHash), []byte(hashPassword(password))) != 1 {
		return fmt.Errorf("%w: %q", ErrBadCredential, member)
	}
	if s.active != member {
		s.epoch++
	}
	s.active = member
	return nil
}

// Logout clears the active profile.
func (s *Store) Logout() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != "" {
		s.epoch++
	}
	s.active = ""
}

// Active returns the logged-in member ID, or "" when logged out.
func (s *Store) Active() ids.MemberID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Members lists every account on the device, sorted.
func (s *Store) Members() []ids.MemberID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedMembers(s.accounts)
}

// Get returns a deep copy of a member's profile.
func (s *Store) Get(member ids.MemberID) (Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[member]
	if !ok {
		return Profile{}, fmt.Errorf("%w: %q", ErrNoSuchMember, member)
	}
	return acct.profile.clone(), nil
}

// ActiveProfile returns a deep copy of the logged-in profile.
func (s *Store) ActiveProfile() (Profile, error) {
	s.mu.Lock()
	active := s.active
	s.mu.Unlock()
	if active == "" {
		return Profile{}, ErrNotLoggedIn
	}
	return s.Get(active)
}

// update applies fn to a member's profile under the lock without
// bumping the epoch. Only device-local bookkeeping (visits, inbox,
// outbox, read marks) goes through here: none of it is ever encoded
// onto the wire, so remote caches keyed on the epoch stay valid.
func (s *Store) update(member ids.MemberID, fn func(*Profile) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[member]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMember, member)
	}
	return fn(&acct.profile)
}

// mutate applies fn under the lock and bumps the epoch when fn reports
// an actual change. No-op edits (re-adding a held interest, removing an
// absent friend) deliberately do not bump, so they cannot spuriously
// invalidate remote caches.
func (s *Store) mutate(member ids.MemberID, fn func(*Profile) (bool, error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[member]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMember, member)
	}
	changed, err := fn(&acct.profile)
	if changed && err == nil {
		s.epoch++
	}
	return err
}

// SetInfo updates the descriptive fields ("Add/Edit Profile").
func (s *Store) SetInfo(member ids.MemberID, fullName, location, about string) error {
	return s.mutate(member, func(p *Profile) (bool, error) {
		changed := p.FullName != fullName || p.Location != location || p.About != about
		p.FullName, p.Location, p.About = fullName, location, about
		return changed, nil
	})
}

// AddInterest adds a normalized personal interest ("Add/Edit Personal
// Interest").
func (s *Store) AddInterest(member ids.MemberID, term string) error {
	n := interest.Normalize(term)
	if n == "" {
		return fmt.Errorf("profile: empty interest")
	}
	return s.mutate(member, func(p *Profile) (bool, error) {
		if p.HasInterest(n) {
			return false, nil
		}
		p.Interests = append(p.Interests, n)
		return true, nil
	})
}

// RemoveInterest drops a personal interest.
func (s *Store) RemoveInterest(member ids.MemberID, term string) error {
	n := interest.Normalize(term)
	return s.mutate(member, func(p *Profile) (bool, error) {
		for i, t := range p.Interests {
			if t == n {
				p.Interests = append(p.Interests[:i], p.Interests[i+1:]...)
				return true, nil
			}
		}
		return false, nil
	})
}

// AddComment appends a profile comment from another member
// (PS_ADDPROFILECOMMENT).
func (s *Store) AddComment(member ids.MemberID, from ids.MemberID, text string) error {
	return s.mutate(member, func(p *Profile) (bool, error) {
		p.Comments = append(p.Comments, Comment{From: from, Text: text, At: s.now()})
		return true, nil
	})
}

// RecordVisit notes that someone viewed the profile (PS_GETPROFILE side
// effect).
func (s *Store) RecordVisit(member ids.MemberID, by ids.MemberID) error {
	return s.update(member, func(p *Profile) error {
		p.Visitors = append(p.Visitors, Visit{By: by, At: s.now()})
		return nil
	})
}

// AddTrusted puts a member on the trusted-friends list.
func (s *Store) AddTrusted(member ids.MemberID, friend ids.MemberID) error {
	if !friend.Valid() {
		return fmt.Errorf("profile: invalid friend id %q", friend)
	}
	return s.mutate(member, func(p *Profile) (bool, error) {
		if p.IsTrusted(friend) {
			return false, nil
		}
		p.Trusted = append(p.Trusted, friend)
		return true, nil
	})
}

// RemoveTrusted drops a member from the trusted-friends list.
func (s *Store) RemoveTrusted(member ids.MemberID, friend ids.MemberID) error {
	return s.mutate(member, func(p *Profile) (bool, error) {
		for i, tf := range p.Trusted {
			if tf == friend {
				p.Trusted = append(p.Trusted[:i], p.Trusted[i+1:]...)
				return true, nil
			}
		}
		return false, nil
	})
}

// Share adds a content item to the shared list.
func (s *Store) Share(member ids.MemberID, item ContentItem) error {
	if item.Name == "" {
		return fmt.Errorf("profile: shared item needs a name")
	}
	return s.mutate(member, func(p *Profile) (bool, error) {
		for _, existing := range p.Shared {
			if existing.Name == item.Name {
				return false, fmt.Errorf("profile: %q already shared", item.Name)
			}
		}
		p.Shared = append(p.Shared, item)
		return true, nil
	})
}

// Unshare removes a content item.
func (s *Store) Unshare(member ids.MemberID, name string) error {
	return s.mutate(member, func(p *Profile) (bool, error) {
		for i, item := range p.Shared {
			if item.Name == name {
				p.Shared = append(p.Shared[:i], p.Shared[i+1:]...)
				return true, nil
			}
		}
		return false, nil
	})
}

// Deliver writes a received message into the inbox (PS_MSG).
func (s *Store) Deliver(member ids.MemberID, msg Message) error {
	return s.update(member, func(p *Profile) error {
		msg.At = s.now()
		msg.Read = false
		p.Inbox = append(p.Inbox, msg)
		return nil
	})
}

// RecordSent appends a copy of an outgoing message to the outbox
// ("view sent messages", §5.2.6).
func (s *Store) RecordSent(member ids.MemberID, msg Message) error {
	return s.update(member, func(p *Profile) error {
		msg.At = s.now()
		p.Outbox = append(p.Outbox, msg)
		return nil
	})
}

// MarkRead marks the i-th inbox message read.
func (s *Store) MarkRead(member ids.MemberID, index int) error {
	return s.update(member, func(p *Profile) error {
		if index < 0 || index >= len(p.Inbox) {
			return fmt.Errorf("profile: no inbox message %d", index)
		}
		p.Inbox[index].Read = true
		return nil
	})
}

// --- Persistence ---

// storeFile is the JSON document SaveTo writes.
type storeFile struct {
	Accounts []storedAccount `json:"accounts"`
}

type storedAccount struct {
	PasswordHash string  `json:"password_hash"`
	Profile      Profile `json:"profile"`
}

// SaveTo serializes every account (passwords stay hashed).
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.Lock()
	doc := storeFile{}
	for _, member := range sortedMembers(s.accounts) {
		acct := s.accounts[member]
		doc.Accounts = append(doc.Accounts, storedAccount{
			PasswordHash: acct.passwordHash,
			Profile:      acct.profile.clone(),
		})
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadFrom replaces the store contents with a previously saved
// document. The active login is cleared.
func (s *Store) LoadFrom(r io.Reader) error {
	var doc storeFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("profile: loading store: %w", err)
	}
	accounts := make(map[ids.MemberID]*account, len(doc.Accounts))
	for _, sa := range doc.Accounts {
		if !sa.Profile.Member.Valid() {
			return fmt.Errorf("profile: stored profile has invalid member %q", sa.Profile.Member)
		}
		accounts[sa.Profile.Member] = &account{passwordHash: sa.PasswordHash, profile: sa.Profile}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accounts = accounts
	s.active = ""
	s.epoch++
	return nil
}

// SaveFile writes the store to a file path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer func() { _ = f.Close() }() // error path only; success path checks below
	if err := s.SaveTo(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads the store from a file path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return s.LoadFrom(f)
}
