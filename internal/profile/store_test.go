package profile

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ids"
)

func fixedNow() time.Time {
	return time.Date(2008, 11, 14, 12, 0, 0, 0, time.UTC)
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(fixedNow)
	if err := s.CreateAccount("alice", "secret"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateAndLogin(t *testing.T) {
	s := newTestStore(t)
	if err := s.Login("alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != "alice" {
		t.Fatalf("Active = %q", s.Active())
	}
	s.Logout()
	if s.Active() != "" {
		t.Fatal("Logout did not clear active")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	s := newTestStore(t)
	if err := s.Login("alice", "wrong"); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("err = %v, want ErrBadCredential", err)
	}
	if err := s.Login("nobody", "x"); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("unknown member err = %v, want ErrBadCredential", err)
	}
	if s.Active() != "" {
		t.Fatal("failed login should not set active")
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateAccount("alice", "x"); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("err = %v, want ErrMemberExists", err)
	}
	if err := s.CreateAccount("", "x"); err == nil {
		t.Fatal("empty member id accepted")
	}
}

func TestMultipleProfiles(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateAccount("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	members := s.Members()
	if len(members) != 2 || members[0] != "alice" || members[1] != "bob" {
		t.Fatalf("Members = %v", members)
	}
	// Switching profiles by logging in as the other member.
	if err := s.Login("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != "bob" {
		t.Fatal("active should be bob")
	}
}

func TestActiveProfileRequiresLogin(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.ActiveProfile(); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("err = %v, want ErrNotLoggedIn", err)
	}
	if err := s.Login("alice", "secret"); err != nil {
		t.Fatal(err)
	}
	p, err := s.ActiveProfile()
	if err != nil || p.Member != "alice" {
		t.Fatalf("ActiveProfile = %+v, %v", p, err)
	}
}

func TestSetInfoAndGet(t *testing.T) {
	s := newTestStore(t)
	if err := s.SetInfo("alice", "Alice A.", "Lappeenranta", "student"); err != nil {
		t.Fatal(err)
	}
	p, err := s.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.FullName != "Alice A." || p.Location != "Lappeenranta" || p.About != "student" {
		t.Fatalf("profile = %+v", p)
	}
	if _, err := s.Get("ghost"); !errors.Is(err, ErrNoSuchMember) {
		t.Fatalf("Get(ghost) = %v, want ErrNoSuchMember", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTestStore(t)
	if err := s.AddInterest("alice", "football"); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Get("alice")
	p.Interests[0] = "MUTATED"
	p2, _ := s.Get("alice")
	if p2.Interests[0] != "football" {
		t.Fatal("Get aliases internal state")
	}
}

func TestInterests(t *testing.T) {
	s := newTestStore(t)
	for _, term := range []string{"Football", "football", "  FOOTBALL ", "Movies"} {
		if err := s.AddInterest("alice", term); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get("alice")
	if len(p.Interests) != 2 {
		t.Fatalf("Interests = %v, want normalized dedup to 2", p.Interests)
	}
	if !p.HasInterest("FOOTBALL") {
		t.Fatal("HasInterest should normalize")
	}
	if err := s.AddInterest("alice", "   "); err == nil {
		t.Fatal("empty interest accepted")
	}
	if err := s.RemoveInterest("alice", "football"); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Get("alice")
	if len(p.Interests) != 1 || p.Interests[0] != "movies" {
		t.Fatalf("after remove: %v", p.Interests)
	}
	// Removing a non-listed interest is a no-op.
	if err := s.RemoveInterest("alice", "absent"); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndVisitors(t *testing.T) {
	s := newTestStore(t)
	if err := s.AddComment("alice", "bob", "nice profile"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVisit("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Get("alice")
	if len(p.Comments) != 1 || p.Comments[0].From != "bob" || p.Comments[0].Text != "nice profile" {
		t.Fatalf("Comments = %+v", p.Comments)
	}
	if !p.Comments[0].At.Equal(fixedNow()) {
		t.Fatal("comment not timestamped")
	}
	if len(p.Visitors) != 1 || p.Visitors[0].By != "bob" {
		t.Fatalf("Visitors = %+v", p.Visitors)
	}
}

func TestTrustedFriends(t *testing.T) {
	s := newTestStore(t)
	if err := s.AddTrusted("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrusted("alice", "bob"); err != nil {
		t.Fatal(err) // idempotent
	}
	p, _ := s.Get("alice")
	if len(p.Trusted) != 1 || !p.IsTrusted("bob") || p.IsTrusted("carol") {
		t.Fatalf("Trusted = %+v", p.Trusted)
	}
	if err := s.AddTrusted("alice", ""); err == nil {
		t.Fatal("empty friend accepted")
	}
	if err := s.RemoveTrusted("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Get("alice")
	if p.IsTrusted("bob") {
		t.Fatal("bob should be removed")
	}
}

func TestSharedContent(t *testing.T) {
	s := newTestStore(t)
	if err := s.Share("alice", ContentItem{Name: "song.mp3", Size: 4096}); err != nil {
		t.Fatal(err)
	}
	if err := s.Share("alice", ContentItem{Name: "song.mp3", Size: 1}); err == nil {
		t.Fatal("duplicate share accepted")
	}
	if err := s.Share("alice", ContentItem{}); err == nil {
		t.Fatal("nameless share accepted")
	}
	p, _ := s.Get("alice")
	if len(p.Shared) != 1 || p.Shared[0].Size != 4096 {
		t.Fatalf("Shared = %+v", p.Shared)
	}
	if err := s.Unshare("alice", "song.mp3"); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Get("alice")
	if len(p.Shared) != 0 {
		t.Fatal("unshare failed")
	}
}

func TestMessaging(t *testing.T) {
	s := newTestStore(t)
	msg := Message{From: "bob", To: "alice", Subject: "hi", Body: "hello alice"}
	if err := s.Deliver("alice", msg); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordSent("alice", Message{From: "alice", To: "bob", Subject: "re", Body: "hey"}); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Get("alice")
	if len(p.Inbox) != 1 || p.Inbox[0].Subject != "hi" || p.Inbox[0].Read {
		t.Fatalf("Inbox = %+v", p.Inbox)
	}
	if p.UnreadCount() != 1 {
		t.Fatalf("UnreadCount = %d", p.UnreadCount())
	}
	if len(p.Outbox) != 1 || p.Outbox[0].To != "bob" {
		t.Fatalf("Outbox = %+v", p.Outbox)
	}
	if err := s.MarkRead("alice", 0); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Get("alice")
	if p.UnreadCount() != 0 {
		t.Fatal("MarkRead failed")
	}
	if err := s.MarkRead("alice", 5); err == nil {
		t.Fatal("out-of-range MarkRead accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateAccount("bob", "pw2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInterest("alice", "football"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrusted("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.Deliver("alice", Message{From: "bob", To: "alice", Subject: "s", Body: "b"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(fixedNow)
	if err := s2.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got := s2.Members(); len(got) != 2 {
		t.Fatalf("Members after load = %v", got)
	}
	p, err := s2.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasInterest("football") || !p.IsTrusted("bob") || len(p.Inbox) != 1 {
		t.Fatalf("profile after load = %+v", p)
	}
	// Passwords survive (hashed).
	if err := s2.Login("alice", "secret"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Login("bob", "wrong"); !errors.Is(err, ErrBadCredential) {
		t.Fatal("wrong password accepted after load")
	}
}

func TestSaveDoesNotLeakPassword(t *testing.T) {
	s := newTestStore(t)
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "secret") {
		t.Fatal("plaintext password in saved store")
	}
}

func TestLoadInvalid(t *testing.T) {
	s := NewStore(nil)
	if err := s.LoadFrom(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := s.LoadFrom(strings.NewReader(`{"accounts":[{"password_hash":"x","profile":{"member":""}}]}`)); err == nil {
		t.Fatal("invalid member accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := newTestStore(t)
	path := t.TempDir() + "/store.json"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(nil)
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if len(s2.Members()) != 1 {
		t.Fatal("file round trip lost accounts")
	}
	if err := s2.LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestConcurrentMutation(t *testing.T) {
	s := newTestStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = s.AddComment("alice", "bob", "c")
				_ = s.RecordVisit("alice", "bob")
				_, _ = s.Get("alice")
			}
		}(i)
	}
	wg.Wait()
	p, _ := s.Get("alice")
	if len(p.Comments) != 400 || len(p.Visitors) != 400 {
		t.Fatalf("comments=%d visitors=%d, want 400 each", len(p.Comments), len(p.Visitors))
	}
}

func TestUpdateUnknownMember(t *testing.T) {
	s := newTestStore(t)
	if err := s.AddComment("ghost", "bob", "x"); !errors.Is(err, ErrNoSuchMember) {
		t.Fatalf("err = %v, want ErrNoSuchMember", err)
	}
}

func TestMemberIDTypeSafety(t *testing.T) {
	// Guards the ids invariant at the API boundary.
	s := NewStore(nil)
	if err := s.CreateAccount(ids.MemberID("with\nnewline"), "pw"); err == nil {
		t.Fatal("member id with newline accepted")
	}
}

// TestSaveLoadRoundTripProperty: any profile contents survive JSON
// persistence byte-for-byte.
func TestSaveLoadRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		if s == "" || !ids.MemberID(s).Valid() {
			return "m"
		}
		return s
	}
	prop := func(full, loc, about, interest1, commentText string, size int16) bool {
		s := NewStore(fixedNow)
		if err := s.CreateAccount("p", "pw"); err != nil {
			return false
		}
		if err := s.SetInfo("p", full, loc, about); err != nil {
			return false
		}
		_ = s.AddInterest("p", clean(interest1))
		if err := s.AddComment("p", ids.MemberID(clean("c")), commentText); err != nil {
			return false
		}
		if err := s.Share("p", ContentItem{Name: "item", Size: int64(size)}); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s.SaveTo(&buf); err != nil {
			return false
		}
		s2 := NewStore(fixedNow)
		if err := s2.LoadFrom(&buf); err != nil {
			return false
		}
		p1, err1 := s.Get("p")
		p2, err2 := s2.Get("p")
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.FullName == p2.FullName && p1.Location == p2.Location &&
			p1.About == p2.About && len(p1.Interests) == len(p2.Interests) &&
			len(p1.Comments) == len(p2.Comments) &&
			p1.Comments[0].Text == p2.Comments[0].Text &&
			len(p1.Shared) == 1 && p2.Shared[0].Size == int64(size)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
