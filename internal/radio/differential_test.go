package radio

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/vtime"
)

// This file is the differential property suite for the spatial grid
// index: over seeded randomized worlds — mixed mobility models, mixed
// technologies, power and coverage toggles, device churn — the
// grid-indexed Neighbors path must return byte-identical results to the
// brute-force per-pair oracle at every queried epoch, and Reachable
// must agree with neighbor-list membership.

// diffWorld is one randomized world under a manual clock.
type diffWorld struct {
	env   *Environment
	clk   *vtime.Manual
	rng   *rand.Rand
	ids   []ids.DeviceID
	areaM float64
}

// techSets are the radio loadouts devices are drawn from, including
// partial ones so cross-technology visibility asymmetries are covered.
var techSets = [][]Technology{
	{Bluetooth},
	{WLAN},
	{GPRS},
	{Bluetooth, WLAN},
	{Bluetooth, GPRS},
	{WLAN, GPRS},
	{Bluetooth, WLAN, GPRS},
}

// randomModel draws one of the mobility models, seeded from the world's
// rng so the trajectory replays with the case seed.
func randomModel(rng *rand.Rand, area float64) mobility.Model {
	at := geo.Pt(rng.Float64()*area, rng.Float64()*area)
	switch rng.Intn(5) {
	case 0:
		return mobility.Static{At: at}
	case 1:
		return mobility.Linear{
			Start:    at,
			Velocity: geo.Vec(rng.Float64()*4-2, rng.Float64()*4-2),
		}
	case 2:
		region := geo.NewRect(geo.Pt(0, 0), geo.Pt(area, area))
		return mobility.NewRandomWaypoint(region, 0.5, 3, time.Second, rng.Int63())
	case 3:
		return mobility.Orbit{
			Center: at,
			Radius: 1 + rng.Float64()*30,
			Period: time.Duration(5+rng.Intn(60)) * time.Second,
			Phase:  rng.Float64() * 6.28,
		}
	default:
		pts := make([]geo.Point, 2+rng.Intn(4))
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*area, rng.Float64()*area)
		}
		return mobility.Waypoints{Points: pts, Speed: 0.5 + rng.Float64()*2}
	}
}

// newDiffWorld builds a seeded world: 4–40 devices over a 20–200 m
// square, each with a random loadout and mobility model.
func newDiffWorld(seed int64) *diffWorld {
	rng := rand.New(rand.NewSource(seed))
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk))
	w := &diffWorld{
		env:   env,
		clk:   clk,
		rng:   rng,
		areaM: 20 + rng.Float64()*180,
	}
	n := 4 + rng.Intn(37)
	for i := 0; i < n; i++ {
		id := ids.DeviceID(fmt.Sprintf("dev-%03d", i))
		techs := techSets[rng.Intn(len(techSets))]
		if err := env.Add(id, randomModel(rng, w.areaM), techs...); err != nil {
			panic(err)
		}
		w.ids = append(w.ids, id)
	}
	return w
}

// mutate applies a random batch of world mutations: power toggles,
// coverage flips, model swaps, the odd removal and (re-)addition.
func (w *diffWorld) mutate(t *testing.T) {
	t.Helper()
	for i := 0; i < 1+w.rng.Intn(4); i++ {
		id := w.ids[w.rng.Intn(len(w.ids))]
		switch w.rng.Intn(6) {
		case 0:
			if err := w.env.SetPowered(id, false); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := w.env.SetPowered(id, true); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := w.env.SetCoverage(id, w.rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := w.env.SetModel(id, randomModel(w.rng, w.areaM)); err != nil {
				t.Fatal(err)
			}
		case 4:
			w.env.Remove(id)
			// Re-add under the same ID with a fresh loadout so the
			// device set stays stable for the query loop.
			techs := techSets[w.rng.Intn(len(techSets))]
			if err := w.env.Add(id, randomModel(w.rng, w.areaM), techs...); err != nil {
				t.Fatal(err)
			}
		default:
			// No mutation this draw: some steps only move time.
		}
	}
}

// checkEpoch asserts, for every device and technology, that the grid
// and brute paths agree exactly at the current epoch, and that
// Reachable matches neighbor-list membership for sampled pairs.
func (w *diffWorld) checkEpoch(t *testing.T, seed int64, step int) {
	t.Helper()
	for _, tech := range AllTechnologies() {
		for _, id := range w.ids {
			got := w.env.Neighbors(id, tech)
			want := w.env.NeighborsBrute(id, tech)
			if !slices.Equal(got, want) {
				t.Fatalf("seed %d step %d: Neighbors(%s, %v) grid %v != brute %v",
					seed, step, id, tech, got, want)
			}
		}
		// Reachable must agree with membership in the grid result.
		a := w.ids[w.rng.Intn(len(w.ids))]
		members := make(map[ids.DeviceID]bool)
		for _, m := range w.env.Neighbors(a, tech) {
			members[m] = true
		}
		for _, b := range w.ids {
			if a == b {
				continue
			}
			if w.env.Reachable(a, b, tech) != members[b] {
				t.Fatalf("seed %d step %d: Reachable(%s, %s, %v) = %v disagrees with Neighbors membership",
					seed, step, a, b, tech, !members[b])
			}
		}
	}
}

// TestGridMatchesBruteForceOracle runs the differential property over
// ≥1000 seeded (world, time-step) cases.
func TestGridMatchesBruteForceOracle(t *testing.T) {
	worlds, steps := 125, 8 // 1000 cases
	if testing.Short() {
		worlds = 25
	}
	for seed := int64(0); seed < int64(worlds); seed++ {
		w := newDiffWorld(seed)
		for step := 0; step < steps; step++ {
			w.checkEpoch(t, seed, step)
			w.mutate(t)
			// Advance by an uneven delta so epochs land between, on and
			// across mobility-leg boundaries.
			w.clk.Advance(time.Duration(1+w.rng.Intn(20000)) * time.Millisecond)
		}
	}
}

// TestGridBoundaryExactRange pins the range boundary: a device at
// exactly PHY range is a neighbor on both paths, one epsilon beyond is
// not on either.
func TestGridBoundaryExactRange(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk))
	r := env.PHY(Bluetooth).Range
	mustAdd := func(id ids.DeviceID, at geo.Point) {
		t.Helper()
		if err := env.Add(id, mobility.Static{At: at}, Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("center", geo.Pt(0, 0))
	mustAdd("at-range", geo.Pt(r, 0))
	mustAdd("beyond", geo.Pt(r+1e-9, 0))
	mustAdd("diagonal", geo.Pt(r/2, r/2)) // inside on the diagonal, in a neighboring cell
	mustAdd("negative", geo.Pt(-r, 0))                    // exactly at range across the cell-0 boundary

	got := env.Neighbors("center", Bluetooth)
	want := env.NeighborsBrute("center", Bluetooth)
	if !slices.Equal(got, want) {
		t.Fatalf("grid %v != brute %v", got, want)
	}
	wantSet := []ids.DeviceID{"at-range", "diagonal", "negative"}
	if !slices.Equal(got, wantSet) {
		t.Fatalf("Neighbors = %v, want %v", got, wantSet)
	}
}

// TestGridSnapshotInvalidatedByMutation verifies the epoch cache can
// never serve stale state: a power toggle between two queries at the
// same modeled instant must be visible to the second query.
func TestGridSnapshotInvalidatedByMutation(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk))
	for _, id := range []ids.DeviceID{"a", "b"} {
		if err := env.Add(id, mobility.Static{At: geo.Pt(0, 0)}, Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	if got := env.Neighbors("a", Bluetooth); len(got) != 1 {
		t.Fatalf("Neighbors = %v, want [b]", got)
	}
	if err := env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	if got := env.Neighbors("a", Bluetooth); len(got) != 0 {
		t.Fatalf("Neighbors after power-off = %v, want empty (stale snapshot served)", got)
	}
}
