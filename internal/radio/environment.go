package radio

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/vtime"
)

// Sentinel errors returned by the environment.
var (
	ErrUnknownDevice  = errors.New("radio: unknown device")
	ErrDuplicateID    = errors.New("radio: duplicate device id")
	ErrInvalidID      = errors.New("radio: invalid device id")
	ErrNoSuchRadio    = errors.New("radio: device has no radio for technology")
	ErrDevicePowered  = errors.New("radio: device is powered off")
	ErrNoGPRSCoverage = errors.New("radio: device has no cellular coverage")
)

// Environment is the simulated world: devices, their radios and their
// movement. All methods are safe for concurrent use. Time flows on the
// supplied clock; modeled elapsed time (which drives mobility) is the
// wall time since creation divided by the latency scale, so a scenario
// that models minutes of walking can run in fractions of a second.
type Environment struct {
	clock vtime.Clock
	scale vtime.Scale
	start time.Time

	mu      sync.RWMutex
	phys    map[Technology]PHY
	devices map[ids.DeviceID]*device
	gen     uint64 // bumped under mu by every world mutation

	// viewMu guards the per-technology query-epoch snapshot cache (a
	// few recent epochs per technology; see grid.go for the snapshot
	// rule), and buildMu single-flights cache misses so one snapshot
	// build serves every device querying at a new epoch.
	viewMu  sync.Mutex
	views   map[Technology][]*worldView
	buildMu sync.Mutex

	// inqFaults holds the installed inquiry-fault filter (boxed so the
	// interface can be swapped atomically; nil box or nil filter means
	// no faults). Read lock-free on every Neighbors query.
	inqFaults atomic.Pointer[inquiryFaultsBox]
}

// InquiryFaults filters discovery: a Neighbors query by querier only
// reports target when Visible returns true. Reachability (Reachable,
// link checks, monitors) is never filtered — inquiry faults model scans
// missing devices, not links breaking. Implemented by faults.Plan.
type InquiryFaults interface {
	Visible(querier, target ids.DeviceID, tech Technology, elapsed time.Duration) bool
}

type inquiryFaultsBox struct{ f InquiryFaults }

// SetInquiryFaults installs (or, with nil, removes) the discovery fault
// filter. The filter is applied identically to the grid-indexed and
// brute-force neighbor paths, outside the view cache, so the
// differential oracle property is preserved under faults.
func (e *Environment) SetInquiryFaults(f InquiryFaults) {
	if f == nil {
		e.inqFaults.Store(nil)
		return
	}
	e.inqFaults.Store(&inquiryFaultsBox{f: f})
}

// filterInquiry applies the installed inquiry faults to a freshly
// allocated neighbor list (filtered in place).
func (e *Environment) filterInquiry(id ids.DeviceID, tech Technology, elapsed time.Duration, found []ids.DeviceID) []ids.DeviceID {
	box := e.inqFaults.Load()
	if box == nil || box.f == nil || len(found) == 0 {
		return found
	}
	out := found[:0]
	for _, other := range found {
		if box.f.Visible(id, other, tech, elapsed) {
			out = append(out, other)
		}
	}
	return out
}

type device struct {
	model    mobility.Model
	radios   map[Technology]bool
	powered  bool
	coverage bool // inside cellular coverage (GPRS)
}

// Option configures an Environment.
type Option func(*Environment)

// WithClock substitutes the time source (default: real clock).
func WithClock(c vtime.Clock) Option {
	return func(e *Environment) { e.clock = c }
}

// WithScale sets the latency scale (default: identity).
func WithScale(s vtime.Scale) Option {
	return func(e *Environment) { e.scale = s }
}

// WithPHY overrides the physical model of one technology.
func WithPHY(p PHY) Option {
	return func(e *Environment) { e.phys[p.Tech] = p }
}

// NewEnvironment returns an empty world.
func NewEnvironment(opts ...Option) *Environment {
	e := &Environment{
		clock:   vtime.Real(),
		scale:   vtime.Identity(),
		phys:    make(map[Technology]PHY),
		devices: make(map[ids.DeviceID]*device),
		views:   make(map[Technology][]*worldView),
	}
	for _, t := range AllTechnologies() {
		e.phys[t] = DefaultPHY(t)
	}
	for _, opt := range opts {
		opt(e)
	}
	e.start = e.clock.Now()
	return e
}

// Clock returns the environment's time source.
func (e *Environment) Clock() vtime.Clock { return e.clock }

// Scale returns the environment's latency scale.
func (e *Environment) Scale() vtime.Scale { return e.scale }

// PHY returns the physical model for a technology.
func (e *Environment) PHY(t Technology) PHY {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.phys[t]
}

// Elapsed returns the modeled time since the environment was created.
func (e *Environment) Elapsed() time.Duration {
	return e.scale.ToModeled(e.clock.Now().Sub(e.start))
}

// Add places a device in the world with the given mobility model and
// radio technologies. Devices start powered on and inside cellular
// coverage.
func (e *Environment) Add(id ids.DeviceID, model mobility.Model, techs ...Technology) error {
	if !id.Valid() {
		return fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	if model == nil {
		model = mobility.Static{}
	}
	radios := make(map[Technology]bool, len(techs))
	for _, t := range techs {
		if !t.Valid() {
			return fmt.Errorf("radio: invalid technology %v", t)
		}
		radios[t] = true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.devices[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	e.devices[id] = &device{model: model, radios: radios, powered: true, coverage: true}
	e.gen++
	return nil
}

// Remove deletes a device from the world.
func (e *Environment) Remove(id ids.DeviceID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.devices, id)
	e.gen++
}

// SetPowered turns a device's radios on or off; a powered-off device is
// invisible and unreachable, which is how tests model a user leaving.
func (e *Environment) SetPowered(id ids.DeviceID, on bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.devices[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	d.powered = on
	e.gen++
	return nil
}

// SetCoverage marks whether the device is inside cellular coverage,
// affecting GPRS reachability only.
func (e *Environment) SetCoverage(id ids.DeviceID, covered bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.devices[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	d.coverage = covered
	e.gen++
	return nil
}

// SetModel replaces a device's mobility model. The new model receives
// the same elapsed values as the old one (elapsed time since the
// environment was created), so construct it accordingly.
func (e *Environment) SetModel(id ids.DeviceID, model mobility.Model) error {
	if model == nil {
		model = mobility.Static{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.devices[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	d.model = model
	e.gen++
	return nil
}

// Devices returns all device IDs, sorted, powered or not.
func (e *Environment) Devices() []ids.DeviceID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]ids.DeviceID, 0, len(e.devices))
	for id := range e.devices {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether a device exists.
func (e *Environment) Has(id ids.DeviceID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.devices[id]
	return ok
}

// Position returns a device's current position.
func (e *Environment) Position(id ids.DeviceID) (geo.Point, error) {
	return e.PositionAt(id, e.Elapsed())
}

// PositionAt returns a device's position at the given modeled elapsed
// time.
func (e *Environment) PositionAt(id ids.DeviceID, elapsed time.Duration) (geo.Point, error) {
	e.mu.RLock()
	var model mobility.Model
	d, ok := e.devices[id]
	if ok {
		model = d.model
	}
	e.mu.RUnlock()
	if !ok {
		return geo.Point{}, fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	return model.Position(elapsed), nil
}

// Reachable reports whether a message can pass from a to b over the
// given technology right now: both devices exist, are powered, carry
// the radio, and are within the PHY range (or covered, for cellular).
// A single pair check is O(1), so it stays on the direct per-pair path;
// mobility models are deterministic functions of elapsed time, so at
// any epoch Reachable(a, b) agrees exactly with b's membership in the
// grid-indexed Neighbors(a) (asserted by the differential suite).
func (e *Environment) Reachable(a, b ids.DeviceID, tech Technology) bool {
	return e.ReachableAt(a, b, tech, e.Elapsed())
}

// ReachableAt is Reachable at an explicit modeled elapsed time.
func (e *Environment) ReachableAt(a, b ids.DeviceID, tech Technology, elapsed time.Duration) bool {
	return e.reachableAt(a, b, tech, elapsed)
}

// deviceSnapshot copies the mutable device fields under the lock so
// reachability checks never race with SetPowered/SetModel/SetCoverage.
type deviceSnapshot struct {
	model    mobility.Model
	powered  bool
	coverage bool
	hasRadio bool
}

// snapshotLocked copies one device's state for a technology. Callers
// hold e.mu (read or write).
func (e *Environment) snapshotLocked(id ids.DeviceID, tech Technology) (deviceSnapshot, bool) {
	d, ok := e.devices[id]
	if !ok {
		return deviceSnapshot{}, false
	}
	return deviceSnapshot{
		model:    d.model,
		powered:  d.powered,
		coverage: d.coverage,
		hasRadio: d.radios[tech],
	}, true
}

func (e *Environment) reachableAt(a, b ids.DeviceID, tech Technology, elapsed time.Duration) bool {
	if a == b {
		return false
	}
	e.mu.RLock()
	sa, okA := e.snapshotLocked(a, tech)
	sb, okB := e.snapshotLocked(b, tech)
	phy, okPHY := e.phys[tech]
	e.mu.RUnlock()
	if !okA || !okB || !okPHY {
		return false
	}
	if !sa.powered || !sb.powered || !sa.hasRadio || !sb.hasRadio {
		return false
	}
	if phy.Unlimited() {
		// Cellular: geometric position is irrelevant; coverage matters.
		return sa.coverage && sb.coverage
	}
	pa := sa.model.Position(elapsed)
	pb := sb.model.Position(elapsed)
	return pa.DistanceTo(pb) <= phy.Range
}

// Neighbors returns the devices currently reachable from id over the
// given technology, sorted by device ID for determinism. The query runs
// against the grid-indexed epoch snapshot (grid.go): O(cell occupancy)
// per call, with the O(n) position snapshot amortized over every query
// in the same epoch. NeighborsBrute is the O(n) oracle it is verified
// against.
func (e *Environment) Neighbors(id ids.DeviceID, tech Technology) []ids.DeviceID {
	return e.NeighborsAt(id, tech, e.Elapsed())
}

// NeighborsAt answers a Neighbors query at an explicit modeled elapsed
// time, letting callers pin many queries to one epoch so they share a
// single world snapshot (one discovery round = one epoch).
func (e *Environment) NeighborsAt(id ids.DeviceID, tech Technology, elapsed time.Duration) []ids.DeviceID {
	return e.filterInquiry(id, tech, elapsed, e.view(tech, elapsed).neighborsInView(id))
}

// NeighborsBrute is the brute-force O(n) per-pair neighbor scan the
// grid index replaced. It is retained as the differential-testing
// oracle: the property suite and BenchmarkNeighbors assert the grid
// path returns byte-identical results at a fraction of the cost.
func (e *Environment) NeighborsBrute(id ids.DeviceID, tech Technology) []ids.DeviceID {
	return e.NeighborsBruteAt(id, tech, e.Elapsed())
}

// NeighborsBruteAt is NeighborsBrute at an explicit modeled elapsed
// time.
func (e *Environment) NeighborsBruteAt(id ids.DeviceID, tech Technology, elapsed time.Duration) []ids.DeviceID {
	e.mu.RLock()
	self, ok := e.snapshotLocked(id, tech)
	all := make([]ids.DeviceID, 0, len(e.devices))
	for other := range e.devices {
		all = append(all, other)
	}
	e.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if !ok || !self.powered || !self.hasRadio {
		return nil
	}
	var out []ids.DeviceID
	for _, other := range all {
		if e.reachableAt(id, other, tech, elapsed) {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return e.filterInquiry(id, tech, elapsed, out)
}

// Signal returns the link quality between two devices in [0, 1]: 1 at
// zero distance, 0 at or beyond range. Unlimited-range technologies
// report 1 whenever reachable.
func (e *Environment) Signal(a, b ids.DeviceID, tech Technology) float64 {
	if !e.Reachable(a, b, tech) {
		return 0
	}
	phy := e.PHY(tech)
	if phy.Unlimited() {
		return 1
	}
	pa, errA := e.Position(a)
	pb, errB := e.Position(b)
	if errA != nil || errB != nil {
		return 0
	}
	d := pa.DistanceTo(pb)
	q := 1 - d/phy.Range
	if q < 0 {
		q = 0
	}
	return q
}

// Technologies returns the radio technologies a device carries, sorted
// in preference order.
func (e *Environment) Technologies(id ids.DeviceID) []Technology {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, ok := e.devices[id]
	if !ok {
		return nil
	}
	var out []Technology
	for _, t := range AllTechnologies() {
		if d.radios[t] {
			out = append(out, t)
		}
	}
	return out
}
