package radio

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/vtime"
)

func staticWorld(t *testing.T) (*Environment, *vtime.Manual) {
	t.Helper()
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk), WithScale(vtime.Identity()))
	return env, clk
}

func TestAddAndDevices(t *testing.T) {
	env, _ := staticWorld(t)
	if err := env.Add("b", mobility.Static{At: geo.Pt(0, 0)}, Bluetooth); err != nil {
		t.Fatal(err)
	}
	if err := env.Add("a", mobility.Static{At: geo.Pt(1, 0)}, Bluetooth); err != nil {
		t.Fatal(err)
	}
	got := env.Devices()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Devices() = %v, want sorted [a b]", got)
	}
	if !env.Has("a") || env.Has("zz") {
		t.Fatal("Has() wrong")
	}
}

func TestAddErrors(t *testing.T) {
	env, _ := staticWorld(t)
	if err := env.Add("", nil, Bluetooth); !errors.Is(err, ErrInvalidID) {
		t.Fatalf("empty ID err = %v, want ErrInvalidID", err)
	}
	if err := env.Add("x", nil, Bluetooth); err != nil {
		t.Fatal(err)
	}
	if err := env.Add("x", nil, Bluetooth); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate err = %v, want ErrDuplicateID", err)
	}
	if err := env.Add("y", nil, Technology(99)); err == nil {
		t.Fatal("invalid technology accepted")
	}
}

func TestBluetoothRange(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "near", geo.Pt(0, 0), Bluetooth)
	mustAdd(t, env, "edge", geo.Pt(10, 0), Bluetooth)
	mustAdd(t, env, "far", geo.Pt(10.1, 0), Bluetooth)

	if !env.Reachable("near", "edge", Bluetooth) {
		t.Error("device at exactly 10 m should be reachable (class-2 range)")
	}
	if env.Reachable("near", "far", Bluetooth) {
		t.Error("device at 10.1 m should be out of Bluetooth range")
	}
	if env.Reachable("near", "near", Bluetooth) {
		t.Error("a device is never its own neighbor")
	}
}

func TestWLANRangeExceedsBluetooth(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), Bluetooth, WLAN)
	mustAdd(t, env, "b", geo.Pt(50, 0), Bluetooth, WLAN)
	if env.Reachable("a", "b", Bluetooth) {
		t.Error("50 m should exceed Bluetooth range")
	}
	if !env.Reachable("a", "b", WLAN) {
		t.Error("50 m should be inside WLAN range")
	}
}

func TestGPRSIgnoresDistanceButNeedsCoverage(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), GPRS)
	mustAdd(t, env, "b", geo.Pt(1e6, 0), GPRS)
	if !env.Reachable("a", "b", GPRS) {
		t.Fatal("GPRS should reach across any distance")
	}
	if err := env.SetCoverage("b", false); err != nil {
		t.Fatal(err)
	}
	if env.Reachable("a", "b", GPRS) {
		t.Fatal("GPRS should fail without coverage")
	}
}

func TestNoRadioNoReach(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "bt-only", geo.Pt(0, 0), Bluetooth)
	mustAdd(t, env, "wlan-only", geo.Pt(1, 0), WLAN)
	if env.Reachable("bt-only", "wlan-only", Bluetooth) {
		t.Error("peer without a Bluetooth radio must be unreachable over Bluetooth")
	}
	if env.Reachable("bt-only", "wlan-only", WLAN) {
		t.Error("peer without a WLAN radio must be unreachable over WLAN")
	}
}

func TestPowerOff(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), Bluetooth)
	mustAdd(t, env, "b", geo.Pt(1, 0), Bluetooth)
	if !env.Reachable("a", "b", Bluetooth) {
		t.Fatal("precondition: reachable")
	}
	if err := env.SetPowered("b", false); err != nil {
		t.Fatal(err)
	}
	if env.Reachable("a", "b", Bluetooth) {
		t.Error("powered-off device should be unreachable")
	}
	if got := env.Neighbors("b", Bluetooth); got != nil {
		t.Errorf("powered-off device sees neighbors: %v", got)
	}
	if err := env.SetPowered("b", true); err != nil {
		t.Fatal(err)
	}
	if !env.Reachable("a", "b", Bluetooth) {
		t.Error("power-on should restore reachability")
	}
}

func TestSetPoweredUnknown(t *testing.T) {
	env, _ := staticWorld(t)
	if err := env.SetPowered("ghost", false); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
	if err := env.SetCoverage("ghost", false); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
	if err := env.SetModel("ghost", nil); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestNeighborsSortedAndRangeLimited(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "center", geo.Pt(0, 0), Bluetooth)
	mustAdd(t, env, "n2", geo.Pt(3, 0), Bluetooth)
	mustAdd(t, env, "n1", geo.Pt(0, 4), Bluetooth)
	mustAdd(t, env, "far", geo.Pt(100, 100), Bluetooth)
	got := env.Neighbors("center", Bluetooth)
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("Neighbors = %v, want [n1 n2]", got)
	}
}

func TestReachabilitySymmetric(t *testing.T) {
	env, _ := staticWorld(t)
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(5, 5), geo.Pt(9, 0), geo.Pt(20, 20), geo.Pt(3, 8)}
	for i, p := range pts {
		mustAdd(t, env, ids.DeviceIDf("d%d", i), p, Bluetooth, WLAN)
	}
	devs := env.Devices()
	for _, a := range devs {
		for _, b := range devs {
			for _, tech := range []Technology{Bluetooth, WLAN} {
				if env.Reachable(a, b, tech) != env.Reachable(b, a, tech) {
					t.Fatalf("asymmetric reachability %v<->%v over %v", a, b, tech)
				}
			}
		}
	}
}

func TestMobilityMovesDevicesOutOfRange(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk), WithScale(vtime.Identity()))
	mustAdd(t, env, "fixed", geo.Pt(0, 0), Bluetooth)
	// Walks away at 1 m/s along x.
	if err := env.Add("walker", mobility.Linear{Start: geo.Pt(5, 0), Velocity: geo.Vec(1, 0)}, Bluetooth); err != nil {
		t.Fatal(err)
	}
	if !env.Reachable("fixed", "walker", Bluetooth) {
		t.Fatal("walker should start in range at 5 m")
	}
	clk.Advance(10 * time.Second) // now at 15 m
	if env.Reachable("fixed", "walker", Bluetooth) {
		t.Fatal("walker should be out of range at 15 m")
	}
}

func TestScaleSpeedsUpMobility(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	// 1 modeled second per real millisecond.
	env := NewEnvironment(WithClock(clk), WithScale(vtime.DefaultScale()))
	if err := env.Add("walker", mobility.Linear{Start: geo.Pt(0, 0), Velocity: geo.Vec(1, 0)}, Bluetooth); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond) // 50 modeled seconds
	p, err := env.Position("walker")
	if err != nil {
		t.Fatal(err)
	}
	if p.X < 49.9 || p.X > 50.1 {
		t.Fatalf("walker at %v, want x≈50 after 50 modeled seconds", p)
	}
}

func TestSignal(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), Bluetooth, GPRS)
	mustAdd(t, env, "close", geo.Pt(1, 0), Bluetooth, GPRS)
	mustAdd(t, env, "mid", geo.Pt(5, 0), Bluetooth)
	mustAdd(t, env, "out", geo.Pt(11, 0), Bluetooth)

	if s := env.Signal("a", "close", Bluetooth); s < 0.85 {
		t.Errorf("close signal = %v, want >= 0.85", s)
	}
	sMid := env.Signal("a", "mid", Bluetooth)
	if sMid <= 0 || sMid >= env.Signal("a", "close", Bluetooth) {
		t.Errorf("mid signal = %v, want between 0 and close signal", sMid)
	}
	if s := env.Signal("a", "out", Bluetooth); s != 0 {
		t.Errorf("out-of-range signal = %v, want 0", s)
	}
	if s := env.Signal("a", "close", GPRS); s != 1 {
		t.Errorf("GPRS signal = %v, want 1", s)
	}
}

func TestSignalBoundsProperty(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "origin", geo.Pt(0, 0), Bluetooth)
	i := 0
	prop := func(x, y int8) bool {
		i++
		id := ids.DeviceIDf("p%d", i)
		if err := env.Add(id, mobility.Static{At: geo.Pt(float64(x), float64(y))}, Bluetooth); err != nil {
			return false
		}
		s := env.Signal("origin", id, Bluetooth)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTechnologies(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "tri", geo.Pt(0, 0), GPRS, Bluetooth, WLAN)
	got := env.Technologies("tri")
	want := []Technology{Bluetooth, WLAN, GPRS}
	if len(got) != len(want) {
		t.Fatalf("Technologies = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Technologies = %v, want preference order %v", got, want)
		}
	}
	if env.Technologies("ghost") != nil {
		t.Error("unknown device should have no technologies")
	}
}

func TestRemove(t *testing.T) {
	env, _ := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), Bluetooth)
	mustAdd(t, env, "b", geo.Pt(1, 0), Bluetooth)
	env.Remove("b")
	if env.Has("b") {
		t.Fatal("b should be gone")
	}
	if env.Reachable("a", "b", Bluetooth) {
		t.Fatal("removed device should be unreachable")
	}
	if _, err := env.Position("b"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Position err = %v, want ErrUnknownDevice", err)
	}
}

func TestSetModel(t *testing.T) {
	env, clk := staticWorld(t)
	mustAdd(t, env, "a", geo.Pt(0, 0), Bluetooth)
	if err := env.SetModel("a", mobility.Static{At: geo.Pt(42, 0)}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	p, err := env.Position("a")
	if err != nil {
		t.Fatal(err)
	}
	if p != geo.Pt(42, 0) {
		t.Fatalf("position = %v, want (42, 0)", p)
	}
}

func mustAdd(t *testing.T, env *Environment, id ids.DeviceID, at geo.Point, techs ...Technology) {
	t.Helper()
	if err := env.Add(id, mobility.Static{At: at}, techs...); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborsSymmetricProperty: for random placements, a appears in
// b's neighbor list exactly when b appears in a's.
func TestNeighborsSymmetricProperty(t *testing.T) {
	prop := func(coords [8]int8) bool {
		env, _ := staticWorld(t)
		n := len(coords) / 2
		for i := 0; i < n; i++ {
			id := ids.DeviceIDf("p%d", i)
			at := geo.Pt(float64(coords[2*i]), float64(coords[2*i+1]))
			if err := env.Add(id, mobility.Static{At: at}, Bluetooth); err != nil {
				return false
			}
		}
		inList := func(list []ids.DeviceID, id ids.DeviceID) bool {
			for _, x := range list {
				if x == id {
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				a, b := ids.DeviceIDf("p%d", i), ids.DeviceIDf("p%d", j)
				if inList(env.Neighbors(a, Bluetooth), b) != inList(env.Neighbors(b, Bluetooth), a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
