package radio

import (
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
)

// This file implements the spatial index behind Neighbors: a uniform
// grid over the simulation plane whose cell side equals the PHY range,
// so a range query only inspects the 3x3 block of cells around the
// querying device instead of every device in the world.
//
// The query-epoch snapshot rule: a worldView freezes every device's
// state and position for one (technology, modeled elapsed) pair. All
// positions are evaluated exactly once per epoch — not once per pair as
// the brute-force oracle does — and the view is cached, so the many
// Neighbors queries of one discovery round (every daemon scanning at
// the same modeled instant) share a single O(n) snapshot and each pay
// only the O(occupancy) cell scan. Any world mutation (Add, Remove,
// SetPowered, SetCoverage, SetModel) bumps a generation counter that
// invalidates the cache, so a view can never serve stale state: a
// cached view is reused only when both the modeled time and the
// generation match, which makes the grid path answer-for-answer
// identical to the brute-force oracle (the differential property suite
// asserts byte-identical results over randomized worlds).

// cellKey addresses one square cell of the uniform grid.
type cellKey struct {
	x, y int64
}

// viewDevice is one device's frozen state inside a worldView.
type viewDevice struct {
	pos      geo.Point
	powered  bool
	coverage bool
	hasRadio bool
}

// worldView is an immutable snapshot of the world for one technology at
// one query epoch. Once built it is read without locks.
type worldView struct {
	elapsed time.Duration
	gen     uint64
	phy     PHY
	valid   bool // the technology has a PHY at all
	devs    map[ids.DeviceID]viewDevice
	// grid holds only devices eligible to carry traffic (powered, radio
	// present); nil for unlimited-range technologies.
	grid map[cellKey][]ids.DeviceID
	cell float64
}

// cellOf maps a position to its grid cell for the given cell side.
func cellOf(p geo.Point, cell float64) cellKey {
	return cellKey{x: int64(math.Floor(p.X / cell)), y: int64(math.Floor(p.Y / cell))}
}

// viewCacheSize bounds how many query epochs stay cached per
// technology. One slot is not enough: concurrent discovery rounds
// straddle an epoch boundary (some devices already in the next epoch
// while stragglers finish the previous one), and with a single slot
// their interleaved queries evict each other's snapshot on every call
// — each rebuilding the O(n) view the cache exists to amortize. A few
// slots cover every epoch a staggered round can have in flight.
const viewCacheSize = 4

// view returns the snapshot for (tech, elapsed), reusing a cached one
// when both the modeled time and the world generation match. Misses
// are single-flighted through buildMu: at a new epoch every device
// queries at once, and without the gate each concurrent miss would
// redundantly build the same O(n) snapshot.
func (e *Environment) view(tech Technology, elapsed time.Duration) *worldView {
	e.mu.RLock()
	gen := e.gen
	e.mu.RUnlock()
	if v := e.cachedView(tech, elapsed, gen); v != nil {
		return v
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	if v := e.cachedView(tech, elapsed, gen); v != nil {
		return v // built while we waited for the gate
	}
	v := e.buildView(tech, elapsed)
	e.viewMu.Lock()
	kept := append(make([]*worldView, 0, viewCacheSize), v)
	for _, o := range e.views[tech] {
		if len(kept) == viewCacheSize {
			break
		}
		if o.gen == gen { // stale generations can never hit again
			kept = append(kept, o)
		}
	}
	e.views[tech] = kept
	e.viewMu.Unlock()
	return v
}

// cachedView scans the technology's cached epochs for an exact
// (elapsed, gen) match.
func (e *Environment) cachedView(tech Technology, elapsed time.Duration, gen uint64) *worldView {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	for _, v := range e.views[tech] {
		if v.elapsed == elapsed && v.gen == gen {
			return v
		}
	}
	return nil
}

// buildView takes the O(n) snapshot: device states are copied under the
// read lock, then positions are evaluated outside it (mobility models
// do their own locking and memoization).
func (e *Environment) buildView(tech Technology, elapsed time.Duration) *worldView {
	type devCopy struct {
		id       ids.DeviceID
		model    mobility.Model
		powered  bool
		coverage bool
		hasRadio bool
	}
	e.mu.RLock()
	gen := e.gen
	phy, valid := e.phys[tech]
	copies := make([]devCopy, 0, len(e.devices))
	for id, d := range e.devices {
		copies = append(copies, devCopy{
			id: id, model: d.model,
			powered: d.powered, coverage: d.coverage, hasRadio: d.radios[tech],
		})
	}
	e.mu.RUnlock()
	// Build cell buckets in device order: queries sort their output, but
	// a deterministic view also keeps bucket layout reproducible for
	// anything that iterates cells directly.
	sort.Slice(copies, func(i, j int) bool { return copies[i].id < copies[j].id })

	v := &worldView{
		elapsed: elapsed,
		gen:     gen,
		phy:     phy,
		valid:   valid,
		devs:    make(map[ids.DeviceID]viewDevice, len(copies)),
		cell:    phy.Range,
	}
	ranged := valid && !phy.Unlimited()
	if ranged {
		v.grid = make(map[cellKey][]ids.DeviceID, len(copies))
	}
	for _, c := range copies {
		pos := c.model.Position(elapsed)
		v.devs[c.id] = viewDevice{pos: pos, powered: c.powered, coverage: c.coverage, hasRadio: c.hasRadio}
		if ranged && c.powered && c.hasRadio {
			k := cellOf(pos, v.cell)
			v.grid[k] = append(v.grid[k], c.id)
		}
	}
	return v
}

// neighborsInView answers a Neighbors query against a frozen view. For
// ranged technologies only the 3x3 cell block around the querying
// device is scanned — a cell side equal to the range guarantees every
// device within range lies in that block. The distance predicate is the
// same `<= Range` the brute-force oracle applies, so the two paths
// agree exactly, boundary cases included.
func (v *worldView) neighborsInView(id ids.DeviceID) []ids.DeviceID {
	if !v.valid {
		return nil
	}
	self, ok := v.devs[id]
	if !ok || !self.powered || !self.hasRadio {
		return nil
	}
	var out []ids.DeviceID
	if v.phy.Unlimited() {
		// Cellular: geometric position is irrelevant; coverage matters.
		if !self.coverage {
			return nil
		}
		for other, od := range v.devs {
			if other == id || !od.powered || !od.hasRadio || !od.coverage {
				continue
			}
			out = append(out, other)
		}
	} else {
		c := cellOf(self.pos, v.cell)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, other := range v.grid[cellKey{x: c.x + dx, y: c.y + dy}] {
					if other == id {
						continue
					}
					if self.pos.DistanceTo(v.devs[other].pos) <= v.phy.Range {
						out = append(out, other)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
