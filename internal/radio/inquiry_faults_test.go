package radio

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/vtime"
)

// hashInquiry hides a deterministic pseudo-random subset of sightings,
// standing in for a faults.Plan without importing it (radio only knows
// the InquiryFaults interface).
type hashInquiry struct{ rate uint64 }

func (h hashInquiry) Visible(querier, target ids.DeviceID, tech Technology, elapsed time.Duration) bool {
	f := fnv.New64a()
	_, _ = f.Write([]byte(querier))
	_, _ = f.Write([]byte{0})
	_, _ = f.Write([]byte(target))
	_, _ = f.Write([]byte{byte(tech)})
	return f.Sum64()%100 >= h.rate
}

// Inquiry faults must filter the grid-indexed and brute-force neighbor
// paths identically: the filter sits outside the spatial index, so the
// two query strategies cannot drift apart under fault injection.
func TestInquiryFaultsGridBruteDifferential(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	env := NewEnvironment(WithClock(clk), WithScale(vtime.Identity()))
	devs := make([]ids.DeviceID, 0, 60)
	for i := 0; i < 60; i++ {
		id := ids.DeviceID(fmt.Sprintf("dev-%02d", i))
		pos := geo.Pt(float64(i%10)*3, float64(i/10)*3)
		if err := env.Add(id, mobility.Static{At: pos}, Bluetooth, WLAN); err != nil {
			t.Fatal(err)
		}
		devs = append(devs, id)
	}
	env.SetInquiryFaults(hashInquiry{rate: 35})

	hidden := 0
	for _, tech := range []Technology{Bluetooth, WLAN} {
		for _, dev := range devs {
			grid := env.Neighbors(dev, tech)
			brute := env.NeighborsBrute(dev, tech)
			if !reflect.DeepEqual(grid, brute) {
				t.Fatalf("%s/%v: grid %v != brute %v", dev, tech, grid, brute)
			}
			env.SetInquiryFaults(nil)
			clean := env.Neighbors(dev, tech)
			env.SetInquiryFaults(hashInquiry{rate: 35})
			if len(grid) < len(clean) {
				hidden++
			}
			if len(grid) > len(clean) {
				t.Fatalf("%s/%v: faults added neighbors: %v > %v", dev, tech, grid, clean)
			}
		}
	}
	if hidden == 0 {
		t.Fatal("a 35% miss rate hid no sightings across 120 queries")
	}

	// Reachable ignores inquiry faults: a missed scan is not a broken link.
	if !env.Reachable("dev-00", "dev-01", Bluetooth) {
		t.Fatal("inquiry faults must not affect Reachable")
	}
}
