// Package radio simulates the wireless physical layer under PeerHood: a
// 2-D world of devices whose positions follow mobility models, and
// per-technology PHY characteristics (range, inquiry/scan time,
// connection setup cost, bit rate) that determine who can see and talk
// to whom and how fast.
//
// The PHY constants come from the thesis's own background chapter: the
// Bluetooth figures match a class-2 Bluetooth 2.0 radio (the 3COM
// dongles in Table 5), the WLAN figures match the 802.11b/g rows of
// Table 1, and GPRS matches the 9.6–171 kbps figure quoted in §2.4.3.
package radio

import (
	"fmt"
	"time"
)

// Technology is one of the wireless access technologies PeerHood
// supports through its plugins (§4.2.3).
type Technology int

// The three technologies of the thesis, plus TechNone for zero values.
const (
	TechNone Technology = iota
	Bluetooth
	WLAN
	GPRS
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case Bluetooth:
		return "bluetooth"
	case WLAN:
		return "wlan"
	case GPRS:
		return "gprs"
	case TechNone:
		return "none"
	default:
		return fmt.Sprintf("technology(%d)", int(t))
	}
}

// Valid reports whether t names a real technology.
func (t Technology) Valid() bool {
	return t == Bluetooth || t == WLAN || t == GPRS
}

// AllTechnologies lists the supported technologies in PeerHood's
// preference order (cheap and local first, like the thesis's analysis
// that Bluetooth is "cost free").
func AllTechnologies() []Technology {
	return []Technology{Bluetooth, WLAN, GPRS}
}

// PHY describes the physical-layer behaviour of one technology.
type PHY struct {
	// Name of the technology this PHY models.
	Tech Technology
	// Range is the radio range in meters. A non-positive range means
	// unlimited (cellular coverage).
	Range float64
	// InquiryDuration is how long a device discovery scan takes. For
	// Bluetooth this is the standard 10.24 s inquiry; WLAN broadcast
	// discovery is much faster.
	InquiryDuration time.Duration
	// ConnectSetup is the time to establish a new connection (paging,
	// association, PDP context activation...).
	ConnectSetup time.Duration
	// BitRate is the usable payload rate in bits per second.
	BitRate float64
	// BaseLatency is the one-way latency floor per message.
	BaseLatency time.Duration
}

// TransferTime returns the modeled one-way time for a payload of n
// bytes: base latency plus serialization at the PHY bit rate.
func (p PHY) TransferTime(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	d := p.BaseLatency
	if p.BitRate > 0 {
		d += time.Duration(float64(n*8) / p.BitRate * float64(time.Second))
	}
	return d
}

// Unlimited reports whether the PHY has no geometric range limit.
func (p PHY) Unlimited() bool { return p.Range <= 0 }

// DefaultPHY returns the default physical model for a technology.
func DefaultPHY(t Technology) PHY {
	switch t {
	case Bluetooth:
		return PHY{
			Tech:            Bluetooth,
			Range:           10, // class-2 dongle
			InquiryDuration: 10240 * time.Millisecond,
			ConnectSetup:    1280 * time.Millisecond, // paging
			BitRate:         700e3,                   // usable L2CAP throughput of a 1 Mbps radio
			BaseLatency:     30 * time.Millisecond,
		}
	case WLAN:
		return PHY{
			Tech:            WLAN,
			Range:           91, // ~300 ft, Table 1 802.11b row
			InquiryDuration: 2 * time.Second,
			ConnectSetup:    500 * time.Millisecond,
			BitRate:         5e6, // usable share of 11 Mbps
			BaseLatency:     5 * time.Millisecond,
		}
	case GPRS:
		return PHY{
			Tech:            GPRS,
			Range:           0, // cellular coverage: unlimited
			InquiryDuration: 4 * time.Second,
			ConnectSetup:    3 * time.Second, // PDP context activation
			BitRate:         40e3,            // mid of the 9.6–171 kbps band
			BaseLatency:     600 * time.Millisecond,
		}
	default:
		return PHY{Tech: t}
	}
}

// WLANStandard is one row of the thesis's Table 1.
type WLANStandard struct {
	Name     string
	DataRate float64 // bits per second, peak
	BandGHz  float64
	Security string
}

// PHYForWLANStandard builds a WLAN PHY from one of Table 1's rows: the
// data rate scales the usable bit rate (≈45% of peak, like the default
// 802.11b model), and the 5 GHz band's poorer propagation shortens the
// range, matching the table's note that 802.11a has "relatively shorter
// range than 802.11b". Unknown names return the default WLAN PHY.
func PHYForWLANStandard(name string) PHY {
	phy := DefaultPHY(WLAN)
	for _, std := range Table1() {
		if std.Name != name || std.DataRate <= 0 {
			continue
		}
		phy.BitRate = std.DataRate * 0.45
		if std.BandGHz >= 5 {
			phy.Range = 35 // 5 GHz: shorter reach than the 2.4 GHz band
		}
		return phy
	}
	return phy
}

// Table1 returns the WLAN standards catalogue exactly as the thesis's
// Table 1 lists it. The 802.11b row feeds the default WLAN PHY.
func Table1() []WLANStandard {
	return []WLANStandard{
		{Name: "IEEE 802.11", DataRate: 2e6, BandGHz: 2.4, Security: "WEP WPA"},
		{Name: "IEEE 802.11a", DataRate: 54e6, BandGHz: 5, Security: "WEP WPA"},
		{Name: "IEEE 802.11b", DataRate: 11e6, BandGHz: 2.4, Security: "WEP WPA"},
		{Name: "IEEE 802.11g", DataRate: 54e6, BandGHz: 2.4, Security: "WEP WPA"},
		{Name: "IEEE 802.16/a", DataRate: 0, BandGHz: 10, Security: "DES3 AES"},
	}
}
