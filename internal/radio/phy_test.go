package radio

import (
	"testing"
	"time"
)

func TestTechnologyString(t *testing.T) {
	tests := []struct {
		tech Technology
		want string
	}{
		{Bluetooth, "bluetooth"},
		{WLAN, "wlan"},
		{GPRS, "gprs"},
		{TechNone, "none"},
		{Technology(42), "technology(42)"},
	}
	for _, tt := range tests {
		if got := tt.tech.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.tech), got, tt.want)
		}
	}
}

func TestTechnologyValid(t *testing.T) {
	for _, tech := range AllTechnologies() {
		if !tech.Valid() {
			t.Errorf("%v should be valid", tech)
		}
	}
	if TechNone.Valid() || Technology(9).Valid() {
		t.Error("invalid technologies reported valid")
	}
}

func TestDefaultPHYRanges(t *testing.T) {
	bt := DefaultPHY(Bluetooth)
	wlan := DefaultPHY(WLAN)
	gprs := DefaultPHY(GPRS)
	if bt.Range != 10 {
		t.Errorf("Bluetooth range = %v, want 10 (class-2)", bt.Range)
	}
	if wlan.Range <= bt.Range {
		t.Error("WLAN range should exceed Bluetooth")
	}
	if !gprs.Unlimited() {
		t.Error("GPRS should be unlimited range")
	}
	if bt.Unlimited() || wlan.Unlimited() {
		t.Error("short-range radios should not be unlimited")
	}
}

func TestDefaultPHYInquiryOrdering(t *testing.T) {
	// Bluetooth inquiry (10.24 s) dominates the PHC search time in
	// Table 8; it must be the slowest discovery of the three.
	bt := DefaultPHY(Bluetooth).InquiryDuration
	wlan := DefaultPHY(WLAN).InquiryDuration
	gprs := DefaultPHY(GPRS).InquiryDuration
	if bt <= wlan || bt <= gprs {
		t.Fatalf("Bluetooth inquiry %v should be slowest (wlan %v, gprs %v)", bt, wlan, gprs)
	}
	if bt != 10240*time.Millisecond {
		t.Fatalf("Bluetooth inquiry = %v, want the standard 10.24 s", bt)
	}
}

func TestTransferTime(t *testing.T) {
	phy := PHY{BitRate: 8000, BaseLatency: 100 * time.Millisecond} // 1000 bytes/s
	got := phy.TransferTime(500)
	want := 100*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("TransferTime(500) = %v, want %v", got, want)
	}
}

func TestTransferTimeEdgeCases(t *testing.T) {
	phy := PHY{BitRate: 8000, BaseLatency: time.Millisecond}
	if got := phy.TransferTime(0); got != time.Millisecond {
		t.Errorf("TransferTime(0) = %v, want base latency", got)
	}
	if got := phy.TransferTime(-5); got != time.Millisecond {
		t.Errorf("TransferTime(-5) = %v, want base latency", got)
	}
	zeroRate := PHY{BaseLatency: time.Second}
	if got := zeroRate.TransferTime(1 << 20); got != time.Second {
		t.Errorf("zero bitrate TransferTime = %v, want base latency only", got)
	}
}

func TestTransferTimeMonotonicInSize(t *testing.T) {
	phy := DefaultPHY(Bluetooth)
	prev := time.Duration(0)
	for _, n := range []int{0, 1, 10, 100, 1000, 10000} {
		d := phy.TransferTime(n)
		if d < prev {
			t.Fatalf("TransferTime not monotonic at %d bytes", n)
		}
		prev = d
	}
}

func TestGPRSSlowerThanBluetoothSlowerThanWLAN(t *testing.T) {
	const n = 1024
	gprs := DefaultPHY(GPRS).TransferTime(n)
	bt := DefaultPHY(Bluetooth).TransferTime(n)
	wlan := DefaultPHY(WLAN).TransferTime(n)
	if !(gprs > bt && bt > wlan) {
		t.Fatalf("transfer order wrong: gprs=%v bt=%v wlan=%v", gprs, bt, wlan)
	}
}

func TestTable1MatchesThesis(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	byName := make(map[string]WLANStandard, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	if b := byName["IEEE 802.11b"]; b.DataRate != 11e6 || b.BandGHz != 2.4 {
		t.Errorf("802.11b row = %+v, want 11 Mbps in 2.4 GHz", b)
	}
	if a := byName["IEEE 802.11a"]; a.DataRate != 54e6 || a.BandGHz != 5 {
		t.Errorf("802.11a row = %+v, want 54 Mbps in 5 GHz", a)
	}
	if g := byName["IEEE 802.11g"]; g.DataRate != 54e6 || g.BandGHz != 2.4 {
		t.Errorf("802.11g row = %+v, want 54 Mbps in 2.4 GHz", g)
	}
	if w := byName["IEEE 802.16/a"]; w.Security != "DES3 AES" {
		t.Errorf("WiMAX row = %+v, want DES3 AES security", w)
	}
}

func TestPHYForWLANStandard(t *testing.T) {
	b := PHYForWLANStandard("IEEE 802.11b")
	if b.BitRate != 11e6*0.45 {
		t.Errorf("802.11b bitrate = %v", b.BitRate)
	}
	if b.Range != DefaultPHY(WLAN).Range {
		t.Errorf("802.11b range = %v, want default 2.4 GHz range", b.Range)
	}
	a := PHYForWLANStandard("IEEE 802.11a")
	if a.BitRate <= b.BitRate {
		t.Error("802.11a should be faster than 802.11b")
	}
	if a.Range >= b.Range {
		t.Error("802.11a (5 GHz) should have shorter range than 802.11b")
	}
	g := PHYForWLANStandard("IEEE 802.11g")
	if g.BitRate != 54e6*0.45 || g.Range != b.Range {
		t.Errorf("802.11g = %+v, want 54 Mbps in the 2.4 GHz band", g)
	}
	if got := PHYForWLANStandard("IEEE 802.99x"); got != DefaultPHY(WLAN) {
		t.Error("unknown standard should fall back to the default PHY")
	}
	// WiMAX row has no data rate listed; falls back too.
	if got := PHYForWLANStandard("IEEE 802.16/a"); got != DefaultPHY(WLAN) {
		t.Error("rate-less row should fall back to the default PHY")
	}
}

func TestWLANStandardAffectsTransfers(t *testing.T) {
	const n = 1 << 20
	slow := PHYForWLANStandard("IEEE 802.11b").TransferTime(n)
	fast := PHYForWLANStandard("IEEE 802.11g").TransferTime(n)
	if fast >= slow {
		t.Fatalf("802.11g transfer (%v) should beat 802.11b (%v)", fast, slow)
	}
}
