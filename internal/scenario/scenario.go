// Package scenario assembles complete PeerHood Community deployments —
// radio world, network, daemons, profile stores, servers and clients —
// from a declarative description, so experiments, examples and tools
// build their worlds the same way. It is the "downstream user" API for
// standing up a neighborhood in a few lines.
package scenario

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/community"
	"repro/internal/des"
	"repro/internal/dtn"
	"repro/internal/geo"
	"repro/internal/gossip"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// PeerSpec describes one participant device.
type PeerSpec struct {
	// Member is the logged-in user; it also derives the device ID
	// ("dev-<member>") unless Device is set.
	Member ids.MemberID
	// Device optionally overrides the device ID.
	Device ids.DeviceID
	// Position places the device statically; ignored if Mobility set.
	Position geo.Point
	// Mobility overrides static placement.
	Mobility mobility.Model
	// Interests are the member's personal interests.
	Interests []string
	// Technologies defaults to Bluetooth only.
	Technologies []radio.Technology
	// Trusts lists members this peer accepts as trusted friends.
	Trusts []ids.MemberID
	// Shared content, name → bytes.
	Shared map[string][]byte
}

func (p PeerSpec) deviceID() ids.DeviceID {
	if p.Device != "" {
		return p.Device
	}
	return ids.DeviceID("dev-" + string(p.Member))
}

// Builder accumulates a deployment description.
type Builder struct {
	scale      vtime.Scale
	seed       int64
	semantics  *interest.Semantics
	peers      []PeerSpec
	gprsProxy  ids.DeviceID
	phys       []radio.PHY
	serverOpts community.ServerOptions
	hasSrvOpts bool
	resilience community.ResilienceOptions
	hasResil   bool
	useDES     bool
	desShards  int
	desWorkers int
	useGossip  bool
	gossipCfg  gossip.Config
	useDTN     bool
	dtnCfg     dtn.Config
}

// desDefaultShards is the event scheduler's shard count when WithDES
// is given no override; homes are hashed so any count yields the same
// trace, this only sets the intra-window parallelism.
const desDefaultShards = 8

// NewBuilder returns a builder with the benchmark-grade default scale
// (one modeled second per 10 ms).
func NewBuilder() *Builder {
	return &Builder{scale: vtime.NewScale(1e-2), seed: 1}
}

// WithScale sets the latency scale.
func (b *Builder) WithScale(s vtime.Scale) *Builder {
	b.scale = s
	return b
}

// WithSeed sets the world seed.
func (b *Builder) WithSeed(seed int64) *Builder {
	b.seed = seed
	return b
}

// WithSemantics installs a shared taught-synonym layer on every client.
func (b *Builder) WithSemantics(sem *interest.Semantics) *Builder {
	b.semantics = sem
	return b
}

// WithGPRSProxy routes every daemon's GPRS connections through the
// named operator device (added automatically with a GPRS radio).
func (b *Builder) WithGPRSProxy(dev ids.DeviceID) *Builder {
	b.gprsProxy = dev
	return b
}

// WithPHY overrides one technology's physical model for the whole
// world — e.g. scenario.NewBuilder().WithPHY(radio.PHYForWLANStandard("IEEE 802.11g")).
func (b *Builder) WithPHY(phy radio.PHY) *Builder {
	b.phys = append(b.phys, phy)
	return b
}

// WithServerOptions sets every server's overload limits (admission
// queue, per-peer rate limits, write deadlines).
func (b *Builder) WithServerOptions(opts community.ServerOptions) *Builder {
	b.serverOpts = opts
	b.hasSrvOpts = true
	return b
}

// WithResilience sets every client's degradation knobs (per-peer
// circuit breakers, hedged requests).
func (b *Builder) WithResilience(opts community.ResilienceOptions) *Builder {
	b.resilience = opts
	b.hasResil = true
	return b
}

// WithDES switches the deployment to the discrete-event engine: the
// world runs on a des.Scheduler's virtual clock (radio environment,
// transport, daemons, servers), message transfers and link sweeps are
// scheduled events, and wall-clock time is spent per event rather than
// per timer wait. shards > 0 overrides the scheduler's shard count;
// pass 0 for the default. The goroutine engine remains the default and
// the differential oracle.
func (b *Builder) WithDES(shards int) *Builder {
	b.useDES = true
	b.desShards = shards
	return b
}

// WithDESWorkers overrides the event scheduler's executor count
// (default GOMAXPROCS): how many workers share each window's shard
// batches. Worker count trades wall-clock only — the trace hash and
// every observable are invariant under it. Implies WithDES semantics
// only when WithDES is also called; on the goroutine engine it is
// ignored.
func (b *Builder) WithDESWorkers(workers int) *Builder {
	b.desWorkers = workers
	return b
}

// WithGossip attaches an epidemic discovery engine to every peer: a
// gossip.Node reading the live profile store (interest edits bump the
// store epoch and become fresh rumors) and the daemon's radio
// neighborhood, serving on the gossip port next to the community
// server. Rounds are driven explicitly (Peer.Gossip.Round), so the
// engine works identically on the goroutine and DES transports. The
// zero Config takes the package defaults.
func (b *Builder) WithGossip(cfg gossip.Config) *Builder {
	b.useGossip = true
	b.gossipCfg = cfg
	return b
}

// WithDTN attaches a store-carry-forward delivery engine to every
// peer: a dtn.Node that takes custody of addressed messages, buffers
// them across disconnection under the configured TTL and eviction
// policy, and forwards on contact per the configured relay strategy.
// The social strategy reads each peer's dynamic group views
// (community.Client.Groups), so it composes with the same discovery
// pipeline the rest of the deployment uses. Rounds are driven
// explicitly (Peer.DTN.Round), so the engine works identically on the
// goroutine and DES transports. The zero Config takes the package
// defaults.
func (b *Builder) WithDTN(cfg dtn.Config) *Builder {
	b.useDTN = true
	b.dtnCfg = cfg
	return b
}

// AddPeer appends a participant.
func (b *Builder) AddPeer(spec PeerSpec) *Builder {
	b.peers = append(b.peers, spec)
	return b
}

// Peer is one running participant.
type Peer struct {
	Spec   PeerSpec
	Daemon *peerhood.Daemon
	Lib    *peerhood.Library
	Store  *profile.Store
	Server *community.Server
	Client *community.Client
	Gossip *gossip.Node // nil unless built WithGossip
	DTN    *dtn.Node    // nil unless built WithDTN
}

// Deployment is a running world.
type Deployment struct {
	Env   *radio.Environment
	Net   *netsim.Network
	Proxy *netsim.Proxy  // nil unless a GPRS proxy was configured
	Sched *des.Scheduler // nil unless built WithDES
	peers map[ids.MemberID]*Peer
}

// Build assembles and starts the deployment.
func (b *Builder) Build() (*Deployment, error) {
	if len(b.peers) == 0 {
		return nil, fmt.Errorf("scenario: no peers declared")
	}
	opts := []radio.Option{radio.WithScale(b.scale)}
	for _, phy := range b.phys {
		opts = append(opts, radio.WithPHY(phy))
	}
	var sched *des.Scheduler
	if b.useDES {
		shards := b.desShards
		if shards <= 0 {
			shards = desDefaultShards
		}
		sched = des.NewScheduler(b.seed, shards)
		if b.desWorkers > 0 {
			sched.SetWorkers(b.desWorkers)
		}
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	var net *netsim.Network
	if sched != nil {
		net = netsim.NewDES(env, b.seed, sched)
		sched.Start()
	} else {
		net = netsim.New(env, b.seed)
	}
	d := &Deployment{Env: env, Net: net, Sched: sched, peers: make(map[ids.MemberID]*Peer, len(b.peers))}

	if b.gprsProxy != "" {
		if err := env.Add(b.gprsProxy, mobility.Static{}, radio.GPRS); err != nil {
			d.Stop()
			return nil, fmt.Errorf("scenario: placing proxy: %w", err)
		}
		proxy, err := netsim.NewProxy(net, b.gprsProxy)
		if err != nil {
			d.Stop()
			return nil, err
		}
		d.Proxy = proxy
	}

	for _, spec := range b.peers {
		peer, err := b.buildPeer(d, spec)
		if err != nil {
			d.Stop()
			return nil, fmt.Errorf("scenario: peer %q: %w", spec.Member, err)
		}
		d.peers[spec.Member] = peer
	}
	// Trust relations are cross-peer, so apply them after all stores
	// exist (they only touch the owner's store, but this keeps a single
	// failure point).
	for _, spec := range b.peers {
		owner := d.peers[spec.Member]
		for _, friend := range spec.Trusts {
			if err := owner.Store.AddTrusted(spec.Member, friend); err != nil {
				d.Stop()
				return nil, fmt.Errorf("scenario: trusting %q: %w", friend, err)
			}
		}
	}
	return d, nil
}

func (b *Builder) buildPeer(d *Deployment, spec PeerSpec) (*Peer, error) {
	if !spec.Member.Valid() {
		return nil, fmt.Errorf("invalid member id %q", spec.Member)
	}
	if _, dup := d.peers[spec.Member]; dup {
		return nil, fmt.Errorf("duplicate member %q", spec.Member)
	}
	model := spec.Mobility
	if model == nil {
		model = mobility.Static{At: spec.Position}
	}
	techs := spec.Technologies
	if len(techs) == 0 {
		techs = []radio.Technology{radio.Bluetooth}
	}
	dev := spec.deviceID()
	if err := d.Env.Add(dev, model, techs...); err != nil {
		return nil, err
	}
	daemon, err := peerhood.NewDaemon(peerhood.Config{
		Device:    dev,
		Network:   d.Net,
		GPRSProxy: b.gprsProxy,
	})
	if err != nil {
		return nil, err
	}
	lib := peerhood.NewLibrary(daemon)
	store := profile.NewStore(nil)
	if err := store.CreateAccount(spec.Member, "pw-"+string(spec.Member)); err != nil {
		return nil, err
	}
	if err := store.Login(spec.Member, "pw-"+string(spec.Member)); err != nil {
		return nil, err
	}
	for _, term := range spec.Interests {
		if err := store.AddInterest(spec.Member, term); err != nil {
			return nil, err
		}
	}
	var server *community.Server
	var err2 error
	if b.hasSrvOpts {
		server, err2 = community.NewServerWith(lib, store, b.serverOpts)
	} else {
		server, err2 = community.NewServer(lib, store)
	}
	if err2 != nil {
		return nil, err2
	}
	if err := server.Start(); err != nil {
		return nil, err
	}
	for name, data := range spec.Shared {
		if err := server.ShareContent(spec.Member, name, data); err != nil {
			return nil, err
		}
	}
	client, err := community.NewClient(lib, store, b.semantics)
	if err != nil {
		return nil, err
	}
	if b.hasResil {
		client.SetResilience(b.resilience)
	}
	var gnode *gossip.Node
	if b.useGossip {
		env := d.Env
		gnode, err = gossip.NewNode(gossip.Params{
			Device: dev,
			Member: spec.Member,
			Self: func() gossip.Record {
				rec := gossip.Record{Epoch: store.Epoch()}
				if p, err := store.ActiveProfile(); err == nil {
					rec.Interests = append([]string(nil), p.Interests...)
				}
				return rec
			},
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Net:       d.Net,
			Sem:       b.semantics,
			Seed:      b.seed,
			Config:    b.gossipCfg,
		})
		if err != nil {
			return nil, err
		}
		if err := gnode.Start(); err != nil {
			return nil, err
		}
	}
	var dnode *dtn.Node
	if b.useDTN {
		env := d.Env
		dnode, err = dtn.NewNode(dtn.Params{
			Device:    dev,
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Groups:    client.Groups,
			Net:       d.Net,
			Seed:      b.seed,
			Config:    b.dtnCfg,
		})
		if err != nil {
			return nil, err
		}
		if err := dnode.Start(); err != nil {
			return nil, err
		}
	}
	return &Peer{Spec: spec, Daemon: daemon, Lib: lib, Store: store, Server: server, Client: client, Gossip: gnode, DTN: dnode}, nil
}

// Peer returns a participant by member ID.
func (d *Deployment) Peer(member ids.MemberID) (*Peer, bool) {
	p, ok := d.peers[member]
	return p, ok
}

// MustPeer returns a participant or panics; for examples and tests
// where the member is known to exist.
func (d *Deployment) MustPeer(member ids.MemberID) *Peer {
	p, ok := d.peers[member]
	if !ok {
		panic(fmt.Sprintf("scenario: no peer %q", member))
	}
	return p
}

// Members lists the deployed members, sorted.
func (d *Deployment) Members() []ids.MemberID {
	out := make([]ids.MemberID, 0, len(d.peers))
	for m := range d.peers {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RefreshAll runs one discovery round on every daemon.
func (d *Deployment) RefreshAll(ctx context.Context) error {
	for _, m := range d.Members() {
		if err := d.peers[m].Daemon.RefreshNow(ctx); err != nil {
			return fmt.Errorf("scenario: refreshing %q: %w", m, err)
		}
	}
	return nil
}

// StartAll launches every daemon's background loops.
func (d *Deployment) StartAll() error {
	for _, m := range d.Members() {
		if err := d.peers[m].Daemon.Start(); err != nil {
			return fmt.Errorf("scenario: starting %q: %w", m, err)
		}
	}
	return nil
}

// Stop tears the whole deployment down.
func (d *Deployment) Stop() {
	for _, p := range d.peers {
		if p.DTN != nil {
			p.DTN.Stop()
		}
		if p.Gossip != nil {
			p.Gossip.Stop()
		}
		p.Client.Close()
		p.Server.Stop()
		p.Daemon.Stop()
	}
	if d.Proxy != nil {
		d.Proxy.Stop()
	}
	d.Net.Close()
	// Last: conn teardown above unblocks the deployment's goroutines
	// through their own error paths; stopping the scheduler then
	// releases any waiter still parked on its clock.
	if d.Sched != nil {
		d.Sched.Stop()
	}
}
