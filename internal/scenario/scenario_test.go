package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func fastBuilder() *Builder {
	return NewBuilder().WithScale(vtime.NewScale(1e-4))
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty build accepted")
	}
}

func TestBuildTwoPeerWorld(t *testing.T) {
	d, err := fastBuilder().
		AddPeer(PeerSpec{Member: "alice", Position: geo.Pt(0, 0), Interests: []string{"football"}}).
		AddPeer(PeerSpec{Member: "bob", Position: geo.Pt(5, 0), Interests: []string{"football"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	ctx := testCtx(t)
	if err := d.RefreshAll(ctx); err != nil {
		t.Fatal(err)
	}
	alice := d.MustPeer("alice")
	if _, err := alice.Client.RefreshGroups(ctx); err != nil {
		t.Fatal(err)
	}
	groups := alice.Client.Groups()
	if len(groups) != 1 || groups[0].Interest != "football" {
		t.Fatalf("groups = %+v", groups)
	}
	members := d.Members()
	if len(members) != 2 || members[0] != "alice" || members[1] != "bob" {
		t.Fatalf("Members = %v", members)
	}
	if _, ok := d.Peer("ghost"); ok {
		t.Fatal("Peer(ghost) should miss")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := fastBuilder().AddPeer(PeerSpec{Member: ""}).Build(); err == nil {
		t.Fatal("invalid member accepted")
	}
	_, err := fastBuilder().
		AddPeer(PeerSpec{Member: "dup", Position: geo.Pt(0, 0)}).
		AddPeer(PeerSpec{Member: "dup", Position: geo.Pt(1, 0)}).
		Build()
	if err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestTrustAndSharedWiring(t *testing.T) {
	d, err := fastBuilder().
		AddPeer(PeerSpec{
			Member:    "owner",
			Position:  geo.Pt(0, 0),
			Interests: []string{"music"},
			Trusts:    []ids.MemberID{"friend"},
			Shared:    map[string][]byte{"song.mp3": []byte("bytes")},
		}).
		AddPeer(PeerSpec{Member: "friend", Position: geo.Pt(3, 0), Interests: []string{"music"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	ctx := testCtx(t)
	if err := d.RefreshAll(ctx); err != nil {
		t.Fatal(err)
	}
	friend := d.MustPeer("friend")
	items, err := friend.Client.SharedContentOf(ctx, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Name != "song.mp3" {
		t.Fatalf("items = %+v", items)
	}
	data, err := friend.Client.FetchShared(ctx, "owner", "song.mp3")
	if err != nil || string(data) != "bytes" {
		t.Fatalf("fetch = %q, %v", data, err)
	}
}

func TestSemanticsShared(t *testing.T) {
	sem := interest.NewSemantics()
	sem.Teach("biking", "cycling")
	d, err := fastBuilder().WithSemantics(sem).
		AddPeer(PeerSpec{Member: "a", Position: geo.Pt(0, 0), Interests: []string{"biking"}}).
		AddPeer(PeerSpec{Member: "b", Position: geo.Pt(3, 0), Interests: []string{"cycling"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	ctx := testCtx(t)
	if err := d.RefreshAll(ctx); err != nil {
		t.Fatal(err)
	}
	a := d.MustPeer("a")
	if _, err := a.Client.RefreshGroups(ctx); err != nil {
		t.Fatal(err)
	}
	if groups := a.Client.Groups(); len(groups) != 1 {
		t.Fatalf("groups = %+v, want one merged group", groups)
	}
}

func TestGPRSProxyDeployment(t *testing.T) {
	d, err := fastBuilder().WithGPRSProxy("operator").
		AddPeer(PeerSpec{
			Member: "a", Position: geo.Pt(0, 0),
			Interests: []string{"x"}, Technologies: []radio.Technology{radio.GPRS},
		}).
		AddPeer(PeerSpec{
			Member: "b", Position: geo.Pt(1e5, 0),
			Interests: []string{"x"}, Technologies: []radio.Technology{radio.GPRS},
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if d.Proxy == nil {
		t.Fatal("proxy not created")
	}
	ctx := testCtx(t)
	if err := d.RefreshAll(ctx); err != nil {
		t.Fatal(err)
	}
	a := d.MustPeer("a")
	members, err := a.Client.OnlineMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) < 1 {
		t.Fatalf("members = %+v", members)
	}
	if d.Proxy.Relayed() == 0 {
		t.Fatal("community traffic should have crossed the operator proxy")
	}
}

func TestStartAllRunsBackgroundDiscovery(t *testing.T) {
	d, err := fastBuilder().
		AddPeer(PeerSpec{Member: "a", Position: geo.Pt(0, 0), Interests: []string{"x"}}).
		AddPeer(PeerSpec{Member: "b", Position: geo.Pt(4, 0), Interests: []string{"x"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if err := d.StartAll(); err != nil {
		t.Fatal(err)
	}
	a := d.MustPeer("a")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Lib.GetDeviceList()) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background discovery never found the neighbor")
}

func TestMustPeerPanics(t *testing.T) {
	d, err := fastBuilder().
		AddPeer(PeerSpec{Member: "only", Position: geo.Pt(0, 0)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	defer func() {
		if recover() == nil {
			t.Error("MustPeer(ghost) should panic")
		}
	}()
	d.MustPeer("ghost")
}

func TestCustomDeviceID(t *testing.T) {
	d, err := fastBuilder().
		AddPeer(PeerSpec{Member: "m", Device: "custom-phone", Position: geo.Pt(0, 0)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if d.MustPeer("m").Daemon.Device() != "custom-phone" {
		t.Fatal("device override ignored")
	}
}

func TestWithPHYOverride(t *testing.T) {
	phy := radio.PHYForWLANStandard("IEEE 802.11g")
	d, err := fastBuilder().WithPHY(phy).
		AddPeer(PeerSpec{Member: "a", Position: geo.Pt(0, 0),
			Technologies: []radio.Technology{radio.WLAN}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if got := d.Env.PHY(radio.WLAN).BitRate; got != phy.BitRate {
		t.Fatalf("WLAN bitrate = %v, want 802.11g override %v", got, phy.BitRate)
	}
}
