package simtest

import (
	"testing"
)

// This file re-runs the chaos matrices on the discrete-event engine
// (Scenario.DES): the same seeded fault plans, the same traffic, the
// same reconvergence oracle, with virtual time advanced by popping the
// event queue instead of sleeping. Every invariant the goroutine-engine
// suite enforces must hold unchanged — the engines are two
// implementations of one transport contract, and post-heal
// reconvergence to the fault-free oracle is the contract's observable.

// desChaosScenarios mirrors the goroutine suite's matrix size.
const desChaosScenarios = 54

// desEndpointScenarios mirrors the endpoint suite's matrix size.
const desEndpointScenarios = 10

// assertChaosInvariants applies the suite's standard checks to one run.
func assertChaosInvariants(t *testing.T, sc Scenario, res *Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.Reconverged {
		t.Errorf("group views never reconverged (rounds=%d, faults=%+v)",
			res.RoundsToReconverge, res.Faults)
	}
	if res.Calls == 0 {
		t.Error("scenario drove no traffic")
	}
	if res.MaxCallWall > res.CallBudget {
		t.Errorf("slowest call %v exceeded budget %v", res.MaxCallWall, res.CallBudget)
	}
	if sc.Loss >= 0.15 && res.Faults.MessagesLost == 0 {
		t.Errorf("loss=%v lost no messages: %+v", sc.Loss, res.Faults)
	}
}

// TestChaosSuiteDES runs the full link-fault matrix on the
// discrete-event engine.
func TestChaosSuiteDES(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range Matrix(desChaosScenarios, 1) {
		sc := sc
		sc.DES = true
		sc.Name = "des-" + sc.Name
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			assertChaosInvariants(t, sc, res)
		})
	}
}

// TestChaosEndpointSuiteDES runs the endpoint-fault matrix (stalls,
// slow devices, wedges, crash–restart, with resilience armed) on the
// discrete-event engine.
func TestChaosEndpointSuiteDES(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range EndpointMatrix(desEndpointScenarios, 11) {
		sc := sc
		sc.DES = true
		sc.Name = "des-" + sc.Name
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if !res.Reconverged {
				t.Errorf("group views never reconverged (rounds=%d, faults=%+v)",
					res.RoundsToReconverge, res.Faults)
			}
			if res.Calls == 0 {
				t.Error("scenario drove no traffic")
			}
		})
	}
}

// TestZeroScenarioDESIsClean pins the event engine's baseline: with
// every fault knob zero, no call errors, no counted faults, and
// first-round reconvergence — identical to the goroutine engine's
// zero-scenario pin.
func TestZeroScenarioDESIsClean(t *testing.T) {
	res, err := Run(Scenario{Name: "zero-des", Seed: 5, Peers: 4, DES: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallErrors != 0 {
		t.Errorf("fault-free run had %d call errors", res.CallErrors)
	}
	if res.Faults.MessagesLost != 0 || res.Faults.MessagesCorrupted != 0 || res.Faults.InquiriesMissed != 0 {
		t.Errorf("fault-free run counted faults: %+v", res.Faults)
	}
	if !res.Reconverged || res.RoundsToReconverge != 1 {
		t.Errorf("fault-free run took %d rounds to converge (reconverged=%v)",
			res.RoundsToReconverge, res.Reconverged)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations in fault-free run: %v", res.Violations)
	}
}
