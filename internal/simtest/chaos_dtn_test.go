package simtest

import (
	"reflect"
	"testing"
)

// This file extends the chaos battery to the store-carry-forward
// engine (Scenario.DTN): every member runs a dtn.Node beside its
// fan-out client, custody is taken before the faults hit, contact
// rounds execute under the seeded fault plans, and after healing every
// message whose endpoints share a connected component of the frozen
// radio graph — and whose TTL has not run out — must be delivered.
// Custody counters must balance on every node, and whole runs must
// replay byte-for-byte (witnessed by the folded trace digest).

// dtnChaosScenarios is the size of the DTN fault matrix on the
// goroutine engine.
const dtnChaosScenarios = 16

// dtnDESChaosScenarios mirrors it on the discrete-event engine.
const dtnDESChaosScenarios = 8

// assertDTNInvariants layers the DTN-specific checks over the standard
// chaos invariants.
func assertDTNInvariants(t *testing.T, sc Scenario, res *Result) {
	t.Helper()
	assertChaosInvariants(t, sc, res)
	if res.DTNSent == 0 {
		t.Errorf("DTN scenario originated no messages")
	}
	if !res.DTNConverged {
		t.Errorf("DTN did not deliver every reachable unexpired message (delivered %d/%d sent, %d required): %+v",
			res.DTNDelivered, res.DTNSent, res.DTNRequired, res.DTN)
	}
	if !res.DTN.CustodyBalanced() {
		t.Errorf("deployment-wide custody counters unbalanced: %+v", res.DTN)
	}
	if res.DTN.Rounds == 0 {
		t.Errorf("DTN scenario drove no rounds: %+v", res.DTN)
	}
}

// TestChaosDTNSuite runs the seeded DTN matrix on the goroutine
// engine.
func TestChaosDTNSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range DTNMatrix(dtnChaosScenarios, 41) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			assertDTNInvariants(t, sc, res)
		})
	}
}

// TestChaosDTNSuiteDES re-runs a slice of the DTN matrix on the
// discrete-event engine: the node never reads clocks or sleeps, so the
// identical code must satisfy the identical invariants there.
func TestChaosDTNSuiteDES(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range DTNMatrix(dtnDESChaosScenarios, 51) {
		sc := sc
		sc.DES = true
		sc.Name = "des-" + sc.Name
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			assertDTNInvariants(t, sc, res)
		})
	}
}

// TestChaosDTNReplay runs a lossy partitioned DTN scenario twice from
// one seed on each engine: fault counters, custody statistics, the
// delivery record AND the folded per-node custody trace digest must
// replay byte-for-byte. The digest folds every custody event on every
// node — accept, deliver, expire, evict, transfer, purge, crash — so
// equality means the entire store-carry-forward history replayed
// exactly.
func TestChaosDTNReplay(t *testing.T) {
	for _, des := range []bool{false, true} {
		des := des
		name := "goroutine"
		if des {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Name:      "dtn-replay",
				Seed:      4242,
				Peers:     6,
				Loss:      0.2,
				Partition: true,
				DTN:       true,
				DES:       des,
			}
			r1, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Faults != r2.Faults {
				t.Errorf("fault counters diverged across replays:\n  run1: %+v\n  run2: %+v", r1.Faults, r2.Faults)
			}
			if !reflect.DeepEqual(r1.Events, r2.Events) {
				t.Errorf("event traces diverged across replays: %d vs %d events", len(r1.Events), len(r2.Events))
			}
			if r1.DTN != r2.DTN {
				t.Errorf("DTN stats diverged across replays:\n  run1: %+v\n  run2: %+v", r1.DTN, r2.DTN)
			}
			if r1.DTNDigest != r2.DTNDigest {
				t.Errorf("custody trace digests diverged across replays: %#x vs %#x", r1.DTNDigest, r2.DTNDigest)
			}
			if r1.DTNDelivered != r2.DTNDelivered {
				t.Errorf("delivery record diverged: %d vs %d", r1.DTNDelivered, r2.DTNDelivered)
			}
			if r1.Faults.MessagesLost == 0 {
				t.Errorf("replay scenario injected nothing: %+v", r1.Faults)
			}
			if !r1.DTNConverged || !r2.DTNConverged {
				t.Errorf("replay runs did not deliver: %v / %v", r1.DTNConverged, r2.DTNConverged)
			}
		})
	}
}

// TestChaosDTNCrashRestart is the dedicated crash–restart scenario:
// two peers crash for the whole fault phase (losing their volatile
// relay buffers on restart), the world partitions, and after the heal
// every surviving unexpired message must still reach its destination —
// custody at the source outlives relay loss.
func TestChaosDTNCrashRestart(t *testing.T) {
	res, err := Run(Scenario{
		Name:         "dtn-crash-restart",
		Seed:         7777,
		Peers:        6,
		Loss:         0.1,
		Partition:    true,
		CrashedPeers: 2,
		DTN:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.DTNConverged {
		t.Errorf("post-heal delivery failed after crash-restart (delivered %d/%d): %+v",
			res.DTNDelivered, res.DTNSent, res.DTN)
	}
	if !res.DTN.CustodyBalanced() {
		t.Errorf("custody unbalanced after crash-restart: %+v", res.DTN)
	}
}

// TestChaosDTNStalledRelays wedges serving sessions on two peers for
// the whole fault phase: contacts through them hang and fail, but the
// protocol's custody-on-ack rule means no message is lost to a stalled
// exchange — everything still delivers after the heal.
func TestChaosDTNStalledRelays(t *testing.T) {
	res, err := Run(Scenario{
		Name:         "dtn-stalled-relays",
		Seed:         3131,
		Peers:        6,
		StalledPeers: 2,
		DTN:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.DTNConverged {
		t.Errorf("post-heal delivery failed with stalled relays (delivered %d/%d): %+v",
			res.DTNDelivered, res.DTNSent, res.DTN)
	}
	if !res.DTN.CustodyBalanced() {
		t.Errorf("custody unbalanced with stalled relays: %+v", res.DTN)
	}
}

// TestZeroDTNScenarioIsClean pins the fault-free DTN baseline: no
// faults counted, no violations, every message delivered, no rejected
// frames and no exchange errors.
func TestZeroDTNScenarioIsClean(t *testing.T) {
	res, err := Run(Scenario{Name: "dtn-zero", Seed: 9, Peers: 4, DTN: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.MessagesLost != 0 || res.Faults.MessagesCorrupted != 0 {
		t.Errorf("fault-free run counted faults: %+v", res.Faults)
	}
	if !res.DTNConverged {
		t.Errorf("fault-free DTN run did not deliver everything: %+v", res.DTN)
	}
	if res.DTNDelivered != res.DTNSent {
		t.Errorf("fault-free run delivered %d of %d", res.DTNDelivered, res.DTNSent)
	}
	if res.DTN.FramesRejected != 0 {
		t.Errorf("fault-free run rejected DTN frames: %+v", res.DTN)
	}
	if res.DTN.ExchangeErrors != 0 {
		t.Errorf("fault-free run had exchange errors: %+v", res.DTN)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations in fault-free run: %v", res.Violations)
	}
}
