package simtest

import (
	"reflect"
	"testing"
)

// This file extends the chaos battery to the epidemic engine
// (Scenario.Gossip): every member runs a gossip.Node beside its
// fan-out client, rumor/anti-entropy rounds execute under the same
// seeded fault plans, and after healing BOTH engines must reconverge
// to the same fault-free oracle. Replay must stay byte-for-byte
// deterministic with gossip traffic in the run.

// gossipChaosScenarios is the size of the gossip link-fault matrix.
const gossipChaosScenarios = 16

// gossipDESChaosScenarios mirrors it on the discrete-event engine.
const gossipDESChaosScenarios = 8

// assertGossipInvariants layers the gossip-specific checks over the
// standard chaos invariants.
func assertGossipInvariants(t *testing.T, sc Scenario, res *Result) {
	t.Helper()
	assertChaosInvariants(t, sc, res)
	if res.Gossip.Rounds == 0 {
		t.Errorf("gossip scenario drove no gossip rounds: %+v", res.Gossip)
	}
	if sc.GossipAntiEntropyOnly {
		if res.Gossip.PushesSent != 0 {
			t.Errorf("anti-entropy-only scenario pushed rumors: %+v", res.Gossip)
		}
		if res.Gossip.AERuns == 0 {
			t.Errorf("anti-entropy-only scenario ran no reconciliation: %+v", res.Gossip)
		}
	}
}

// TestChaosGossipSuite runs the seeded gossip matrix on the goroutine
// engine.
func TestChaosGossipSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range GossipMatrix(gossipChaosScenarios, 21) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			assertGossipInvariants(t, sc, res)
		})
	}
}

// TestChaosGossipSuiteDES re-runs a slice of the gossip matrix on the
// discrete-event engine: the node never reads clocks or sleeps, so the
// identical code must satisfy the identical invariants there.
func TestChaosGossipSuiteDES(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range GossipMatrix(gossipDESChaosScenarios, 31) {
		sc := sc
		sc.DES = true
		sc.Name = "des-" + sc.Name
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			assertGossipInvariants(t, sc, res)
		})
	}
}

// TestChaosGossipReplay runs a loss-only gossip scenario twice from
// one seed: fault counters, the event trace, AND the aggregated gossip
// statistics (pushes, skips, deaths, anti-entropy pulls) must replay
// byte-for-byte. Gossip rounds run in sequential lockstep after the
// concurrent traffic phase, so the whole run stays a pure function of
// the seed.
func TestChaosGossipReplay(t *testing.T) {
	sc := Scenario{
		Name:   "gossip-replay",
		Seed:   999,
		Peers:  6,
		Loss:   0.2,
		Gossip: true,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults != r2.Faults {
		t.Errorf("fault counters diverged across replays:\n  run1: %+v\n  run2: %+v", r1.Faults, r2.Faults)
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Errorf("event traces diverged across replays: %d vs %d events", len(r1.Events), len(r2.Events))
	}
	if r1.Gossip != r2.Gossip {
		t.Errorf("gossip stats diverged across replays:\n  run1: %+v\n  run2: %+v", r1.Gossip, r2.Gossip)
	}
	if r1.Faults.MessagesLost == 0 {
		t.Errorf("replay scenario injected nothing: %+v", r1.Faults)
	}
	if r1.Gossip.Rounds == 0 {
		t.Errorf("replay scenario ran no gossip rounds: %+v", r1.Gossip)
	}
	if !r1.Reconverged || !r2.Reconverged {
		t.Errorf("replay runs did not reconverge: %v / %v", r1.Reconverged, r2.Reconverged)
	}
}

// TestChaosGossipAntiEntropyOnly is the dedicated reconciliation
// scenario: rumor pushes fully suppressed under heavy loss, so
// periodic digest exchange is the only propagation path — and it must
// still reach the oracle after the heal.
func TestChaosGossipAntiEntropyOnly(t *testing.T) {
	res, err := Run(Scenario{
		Name:                  "gossip-ae-only",
		Seed:                  1717,
		Peers:                 6,
		Loss:                  0.25,
		Gossip:                true,
		GossipAntiEntropyOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.Reconverged {
		t.Errorf("anti-entropy alone did not reconverge (rounds=%d, gossip=%+v)",
			res.RoundsToReconverge, res.Gossip)
	}
	if res.Gossip.PushesSent != 0 {
		t.Errorf("rumor pushes ran while suppressed: %+v", res.Gossip)
	}
	if res.Gossip.AERuns == 0 {
		t.Errorf("no anti-entropy exchanges ran: %+v", res.Gossip)
	}
	if res.Faults.MessagesLost == 0 {
		t.Errorf("loss knob injected nothing: %+v", res.Faults)
	}
}

// TestZeroGossipScenarioIsClean pins the fault-free gossip baseline:
// no faults counted, no violations, first-round reconvergence of both
// engines, and zero rejected gossip frames.
func TestZeroGossipScenarioIsClean(t *testing.T) {
	res, err := Run(Scenario{Name: "gossip-zero", Seed: 8, Peers: 4, Gossip: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallErrors != 0 {
		t.Errorf("fault-free run had %d call errors", res.CallErrors)
	}
	if res.Faults.MessagesLost != 0 || res.Faults.MessagesCorrupted != 0 {
		t.Errorf("fault-free run counted faults: %+v", res.Faults)
	}
	if !res.Reconverged {
		t.Errorf("fault-free gossip run did not reconverge: %+v", res.Gossip)
	}
	if res.Gossip.FramesRejected != 0 {
		t.Errorf("fault-free run rejected gossip frames: %+v", res.Gossip)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations in fault-free run: %v", res.Violations)
	}
}
