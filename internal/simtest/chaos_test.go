package simtest

import (
	"reflect"
	"testing"
)

// chaosScenarios is the suite size: at least 50 seeded combinations of
// churn, partition, loss, corruption, flaps and missed inquiries.
const chaosScenarios = 54

// TestChaosSuite runs the full seeded matrix. Each scenario asserts the
// stack's chaos invariants end to end:
//   - no operation outlives its deadline budget (degrade, don't hang);
//   - corrupted frames never panic anything (a panic fails the test);
//   - after the faults lift, every node's group view reconverges to
//     the fault-free oracle;
//   - no goroutine leaks (TestMain verifies the whole package).
func TestChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range Matrix(chaosScenarios, 1) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if !res.Reconverged {
				t.Errorf("group views never reconverged (rounds=%d, faults=%+v)",
					res.RoundsToReconverge, res.Faults)
			}
			if res.Calls == 0 {
				t.Error("scenario drove no traffic")
			}
			if res.MaxCallWall > res.CallBudget {
				t.Errorf("slowest call %v exceeded budget %v", res.MaxCallWall, res.CallBudget)
			}
			// A faulty scenario that injected nothing and failed nothing
			// would be vacuous; require evidence the plan was live.
			if sc.Loss >= 0.15 && res.Faults.MessagesLost == 0 {
				t.Errorf("loss=%v lost no messages: %+v", sc.Loss, res.Faults)
			}
		})
	}
}

// TestChaosReplay runs a loss-only scenario twice from the same seed:
// the fault plan's event trace and counters must replay identically.
// (Loss-only keeps behavior free of wall-time feedback: fates are drawn
// per message index, and with no corruption or timing faults the
// traffic's message sequence is itself a pure function of the seed.)
func TestChaosReplay(t *testing.T) {
	sc := Scenario{
		Name:  "replay",
		Seed:  777,
		Peers: 4,
		Loss:  0.2,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults != r2.Faults {
		t.Errorf("fault counters diverged across replays:\n  run1: %+v\n  run2: %+v", r1.Faults, r2.Faults)
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Errorf("event traces diverged across replays: %d vs %d events", len(r1.Events), len(r2.Events))
	}
	if r1.Faults.MessagesLost == 0 {
		t.Errorf("replay scenario injected nothing: %+v", r1.Faults)
	}
	if !r1.Reconverged || !r2.Reconverged {
		t.Errorf("replay runs did not reconverge: %v / %v", r1.Reconverged, r2.Reconverged)
	}
}

// TestChaosMutationBehindPrimedCache is the delta-synchronization
// chaos scenario: several traffic rounds prime every client's
// conditional cache (steady-state reads answer NOT_MODIFIED), then —
// while links flap — every peer adds a fresh shared interest to its
// live store. After healing, the oracle includes the brand-new
// deployment-wide group, so reconvergence proves the caches revalidate
// against the bumped epochs instead of serving the primed state.
func TestChaosMutationBehindPrimedCache(t *testing.T) {
	res, err := Run(Scenario{
		Name:            "mutation-behind-cache",
		Seed:            4242,
		Peers:           6,
		Flap:            0.08,
		Loss:            0.05,
		Rounds:          4,
		MutateInterests: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.Reconverged {
		t.Errorf("caches did not revalidate after the mutation (rounds=%d, client=%+v)",
			res.RoundsToReconverge, res.Client)
	}
	// The pre-mutation rounds must actually have primed the caches —
	// otherwise this scenario degenerates into a plain flap test.
	if res.Client.NotModified == 0 {
		t.Errorf("no NOT_MODIFIED rounds observed; cache was never primed: %+v", res.Client)
	}
	if res.Client.CacheHits == 0 {
		t.Errorf("no cache hits observed: %+v", res.Client)
	}
	if res.Faults.FlapsObserved == 0 {
		t.Errorf("flap knob injected nothing: %+v", res.Faults)
	}
}

// TestZeroScenarioIsClean pins the baseline: with every knob zero the
// run must see no faults, no call errors, and immediate reconvergence.
func TestZeroScenarioIsClean(t *testing.T) {
	res, err := Run(Scenario{Name: "zero", Seed: 5, Peers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallErrors != 0 {
		t.Errorf("fault-free run had %d call errors", res.CallErrors)
	}
	if res.Faults.MessagesLost != 0 || res.Faults.MessagesCorrupted != 0 || res.Faults.InquiriesMissed != 0 {
		t.Errorf("fault-free run counted faults: %+v", res.Faults)
	}
	if !res.Reconverged || res.RoundsToReconverge != 1 {
		t.Errorf("fault-free run took %d rounds to converge (reconverged=%v)",
			res.RoundsToReconverge, res.Reconverged)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations in fault-free run: %v", res.Violations)
	}
}
