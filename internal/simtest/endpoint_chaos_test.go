package simtest

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// endpointScenarios sizes the endpoint chaos suite: seeded compositions
// of per-session stalls, slow devices, wedged peers and crash–restart
// churn with the link-level axes.
const endpointScenarios = 10

// TestChaosEndpointSuite runs the endpoint-fault matrix with client
// resilience armed. On top of the package's standing invariants (budgeted
// calls, oracle reconvergence, no leaks) it requires evidence the
// endpoint fault plane was live: a wedged peer must actually have had
// replies withheld, a crashed peer must actually have been denied.
func TestChaosEndpointSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is long; skipped in -short mode")
	}
	for _, sc := range EndpointMatrix(endpointScenarios, 11) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario could not run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if !res.Reconverged {
				t.Errorf("group views never reconverged (rounds=%d, faults=%+v, client=%+v)",
					res.RoundsToReconverge, res.Faults, res.Client)
			}
			if res.Calls == 0 {
				t.Error("scenario drove no traffic")
			}
			if sc.StalledPeers > 0 && res.Faults.MessagesStalled == 0 {
				t.Errorf("wedged peer withheld nothing: %+v", res.Faults)
			}
			if sc.CrashedPeers > 0 && res.Faults.CrashDenials == 0 {
				t.Errorf("crashed peer denied nothing: %+v", res.Faults)
			}
		})
	}
}

// TestChaosEndpointReplay runs a stall-only scenario twice from one
// seed: the endpoint fault plane must replay byte for byte. Stall fates
// are pure in (server, peer, connSeq) and each directed pair is dialed
// from a single peer's sequential workload, so both the counters and
// the full withheld-reply trace must match; only the trace's append
// order across concurrent peers is timing-dependent, so events are
// compared as a canonically sorted multiset.
func TestChaosEndpointReplay(t *testing.T) {
	sc := Scenario{
		Name:  "endpoint-replay",
		Seed:  1301,
		Peers: 4,
		Stall: 0.35,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Faults != r2.Faults {
		t.Errorf("fault counters diverged across replays:\n  run1: %+v\n  run2: %+v", r1.Faults, r2.Faults)
	}
	e1, e2 := canonicalEvents(r1.Events), canonicalEvents(r2.Events)
	if len(e1) != len(e2) {
		t.Fatalf("event traces diverged: %d vs %d events", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d diverged across replays:\n  run1: %+v\n  run2: %+v", i, e1[i], e2[i])
		}
	}
	if r1.Faults.MessagesStalled == 0 {
		t.Errorf("replay scenario stalled nothing: %+v", r1.Faults)
	}
	if !r1.Reconverged || !r2.Reconverged {
		t.Errorf("replay runs did not reconverge: %v / %v", r1.Reconverged, r2.Reconverged)
	}
}

// canonicalEvents orders a trace by content so traces from concurrent
// runs compare as multisets.
func canonicalEvents(in []faults.Event) []faults.Event {
	out := append([]faults.Event(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.ConnSeq != b.ConnSeq {
			return a.ConnSeq < b.ConnSeq
		}
		return a.MsgSeq < b.MsgSeq
	})
	return out
}

// TestChaosWedgedPeerBreakerReconverges drives the breaker's full arc
// against a gray-failed peer: the observer's neighbor table still lists
// a peer whose serving side has wedged (the connection dials fine, the
// replies never come), so fan-outs pay its call deadline until the
// breaker trips; after the wedge heals, the half-open probe must
// re-admit the peer and group discovery must see it again. The observer
// deliberately never re-runs radio discovery during the wedge — a fresh
// inquiry would drop the silent peer from the table, which is the
// *other* degradation path and is covered by the endpoint suite.
func TestChaosWedgedPeerBreakerReconverges(t *testing.T) {
	const peers = 6
	b := scenario.NewBuilder().WithScale(vtime.NewScale(1e-3)).WithSeed(31).
		WithResilience(community.ResilienceOptions{
			FailureThreshold: 2,
			OpenFor:          time.Second, // floored at 500ms real
		})
	for i := 0; i < peers; i++ {
		b.AddPeer(scenario.PeerSpec{
			Member:    idsMember(i),
			Position:  circlePos(i, peers),
			Interests: []string{interestPool[i%len(interestPool)]},
		})
	}
	dep, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	ctx := context.Background()
	if err := dep.RefreshAll(ctx); err != nil {
		t.Fatal(err)
	}

	observer := dep.MustPeer(idsMember(0))
	wedged := dep.MustPeer(idsMember(3)).Daemon.Device()
	dep.Net.SetFaults(faults.New(31).
		SetEndpoints(faults.EndpointProfile{StallFor: 24 * time.Hour}).
		AddStall(faults.StallWindow{Device: wedged, Start: 0, End: 24 * time.Hour}))

	// Gray-failure rounds: each fan-out pays the wedged call's deadline
	// and records the failure until the breaker opens.
	for i := 0; i < 4 && observer.Client.Stats().BreakerOpens == 0; i++ {
		_, _ = observer.Client.RefreshGroups(ctx)
	}
	st := observer.Client.Stats()
	if st.BreakerOpens == 0 {
		t.Fatalf("fan-outs never tripped the wedged peer's breaker: %+v", st)
	}
	if st.FanoutsDegraded == 0 {
		t.Errorf("degraded fan-outs were not reported: %+v", st)
	}

	// Heal. Once the open window (real-time floored) lapses, the next
	// call is the half-open probe and must re-admit the peer.
	dep.Net.SetFaults(nil)
	clock := dep.Env.Clock()
	deadline := clock.Now().Add(10 * time.Second)
	readmitted := false
	for clock.Now().Before(deadline) {
		if err := observer.Client.Ping(ctx, wedged); err == nil {
			readmitted = true
			break
		}
		clock.Sleep(50 * time.Millisecond)
	}
	if !readmitted {
		t.Fatalf("healed peer was never re-admitted: %+v", observer.Client.Stats())
	}
	if st := observer.Client.Stats(); st.BreakerReadmits == 0 {
		t.Errorf("readmission not counted: %+v", st)
	}
	// And the healed peer is part of group discovery again.
	nearby, err := observer.Client.NearbyMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range nearby {
		if m.ID == idsMember(3) {
			found = true
		}
	}
	if !found {
		t.Errorf("healed peer missing from discovery: %v", nearby)
	}
}

// TestChaosCrashRestartRecovers crashes one peer for the whole fault
// phase; lifting the plan is its restart. The restarted peer must be
// rediscovered and every view — including its own, served from its
// intact state — must reconverge to the fault-free oracle.
func TestChaosCrashRestartRecovers(t *testing.T) {
	res, err := Run(Scenario{
		Name:         "crash-restart",
		Seed:         47,
		Peers:        5,
		Rounds:       2,
		Loss:         0.05,
		CrashedPeers: 1,
		Resilience:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.Reconverged {
		t.Errorf("deployment never recovered the restarted peer (rounds=%d, client=%+v)",
			res.RoundsToReconverge, res.Client)
	}
	if res.Faults.CrashDenials == 0 {
		t.Errorf("crash window denied nothing: %+v", res.Faults)
	}
	if res.CallErrors == 0 {
		t.Error("no call ever failed against the crashed peer")
	}
}

// TestChaosHedgesFireUnderStalls runs a stall-heavy scenario with
// hedging armed: once the latency window is primed, reads that hit a
// stalled session must launch hedged spares, and the fresh sessions'
// independent stall draws must let at least one spare win the race.
func TestChaosHedgesFireUnderStalls(t *testing.T) {
	res, err := Run(Scenario{
		Name:       "hedges-under-stalls",
		Seed:       83,
		Peers:      6,
		Rounds:     3,
		Stall:      0.3,
		Resilience: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !res.Reconverged {
		t.Errorf("stall scenario never reconverged (rounds=%d)", res.RoundsToReconverge)
	}
	if res.Faults.MessagesStalled == 0 {
		t.Errorf("stall knob withheld nothing: %+v", res.Faults)
	}
	if res.Client.HedgesLaunched == 0 {
		t.Errorf("no hedge ever fired under stalls: %+v", res.Client)
	}
	if res.Client.HedgeWins == 0 {
		t.Errorf("no hedged spare ever won the race: %+v", res.Client)
	}
}

// TestChaosStalledPeerSteadyRoundBounded pins the headline degradation
// bound: in a 100-device neighborhood with one gray-failed (wedged)
// peer, an observer's first discovery round pays the stall deadline and
// trips the breaker — and every steady round after that must complete
// well under the stall deadline, because the fan-out skips the open
// circuit instead of re-probing the wedge.
func TestChaosStalledPeerSteadyRoundBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("100-device world; skipped in -short mode")
	}
	const peers = 100
	// steadyBudget is the pinned per-round bound. The wedged call alone
	// costs the full 2s-real robust-call floor, so a steady round beating
	// this budget proves the breaker is carrying the fan-out.
	const steadyBudget = time.Second

	b := scenario.NewBuilder().WithScale(vtime.NewScale(1e-3)).WithSeed(9).
		WithResilience(community.ResilienceOptions{
			FailureThreshold: 1,
			// Hold the circuit open across all measured rounds.
			OpenFor: 2 * time.Hour,
		})
	for i := 0; i < peers; i++ {
		b.AddPeer(scenario.PeerSpec{
			Member:    idsMember(i),
			Position:  circlePos(i, peers),
			Interests: []string{interestPool[i%len(interestPool)]},
		})
	}
	dep, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	ctx := context.Background()

	observer := dep.MustPeer(idsMember(0))
	if err := observer.Daemon.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}

	wedged := dep.MustPeer(idsMember(50)).Daemon.Device()
	// StallFor must beat the 2s-real robust-call deadline floor at this
	// scale, or the wedge degenerates into slowness.
	dep.Net.SetFaults(faults.New(9).
		SetEndpoints(faults.EndpointProfile{StallFor: 24 * time.Hour}).
		AddStall(faults.StallWindow{Device: wedged, Start: 0, End: 24 * time.Hour}))

	// Round 1 pays the wedge: the call into the stalled session times
	// out and opens its breaker.
	clock := dep.Env.Clock()
	if _, err := observer.Client.RefreshGroups(ctx); err != nil {
		t.Logf("first round degraded (expected): %v", err)
	}
	st := observer.Client.Stats()
	if st.BreakerOpens == 0 {
		t.Fatalf("first round never tripped the wedged peer's breaker: %+v", st)
	}

	for round := 2; round <= 4; round++ {
		start := clock.Now()
		if _, err := observer.Client.RefreshGroups(ctx); err != nil {
			t.Fatalf("steady round %d failed outright: %v", round, err)
		}
		wall := clock.Now().Sub(start)
		if wall > steadyBudget {
			t.Errorf("steady round %d took %v with one wedged neighbor, budget %v", round, wall, steadyBudget)
		}
	}
	st = observer.Client.Stats()
	if st.BreakerSkips == 0 {
		t.Errorf("steady rounds never skipped the open circuit: %+v", st)
	}
	if st.FanoutsDegraded == 0 {
		t.Errorf("degraded fan-outs were not reported: %+v", st)
	}
}

// idsMember formats the canonical chaos member name.
func idsMember(i int) ids.MemberID { return ids.MemberID(fmt.Sprintf("m%02d", i)) }
