// Package simtest runs seeded end-to-end chaos scenarios over the full
// PeerHood Community stack: a deployment is built, a deterministic
// fault plan (loss, corruption, flaps, partitions, missed inquiries) is
// installed across the radio and transport substrates, traffic is
// driven through the community clients while the faults are active, and
// then the plan is lifted and the package verifies the stack heals —
// every node's dynamic-group view must reconverge to the fault-free
// oracle, and no operation may outlive its deadline at any point.
//
// Everything is a pure function of Scenario.Seed: the fault plan's
// draws, the peers' interests and mobility, and the traffic each peer
// generates, so a failing scenario replays exactly from its seed.
package simtest

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/dtn"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/gossip"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// Defaults for Scenario knobs left zero.
const (
	defaultPeers       = 5
	defaultRounds      = 2
	defaultScale       = 1e-3
	defaultCallTimeout = 30 * time.Second
	defaultFaultWindow = time.Hour // generous: the fault phase always falls inside
	// defaultEndpointWindow replaces defaultFaultWindow when endpoint
	// knobs are set. Endpoint scenarios burn REAL seconds on call
	// deadlines (the robust-call floor is 2s real, thousands of modeled
	// seconds at chaos scale), so the modeled hour that comfortably
	// covers a link-fault phase can expire mid-phase here.
	defaultEndpointWindow   = 100 * time.Hour
	defaultReconvergeRounds = 40
	defaultMaxRetransmits   = 3
	// defaultStallFor must out-last the robust-call deadline in REAL
	// time, or "stalled" replies arrive before the deadline and the
	// gray failure degenerates into mere slowness. The deadline is
	// floored at 2s real regardless of scale, so at the default 1e-3
	// scale the stall must exceed 2000 modeled seconds; two modeled
	// hours (7.2s real) clears it with margin. Withheld messages ride
	// pump timers that abort with their connection, so the length is
	// free.
	defaultStallFor = 2 * time.Hour
)

// interestPool is the vocabulary scenarios draw member interests from;
// it is small so groups overlap and dynamic-group discovery has work
// to do.
var interestPool = []string{"football", "biking", "music", "chess"}

// mutationInterest is the fresh shared term MutateInterests scenarios
// add mid-run; it is outside interestPool so the mutation is always a
// real epoch-bumping edit, and shared so healing must form a brand-new
// deployment-wide group from state no cache has seen.
const mutationInterest = "origami"

// Scenario describes one seeded chaos run. The zero value of every
// fault knob disables that fault; Run fills structural defaults.
type Scenario struct {
	Name string
	Seed int64
	// Peers is the deployment size (default 5).
	Peers int

	// Loss is the per-message loss probability on every link.
	Loss float64
	// Corrupt is the per-message payload-corruption probability.
	Corrupt float64
	// Miss is the per-inquiry neighbor-miss probability.
	Miss float64
	// Flap is the per-window link-down probability.
	Flap float64
	// Partition splits the world into two halves for the fault phase.
	Partition bool
	// Churn gives every peer random-waypoint mobility during the fault
	// phase (frozen before reconvergence is checked).
	Churn bool

	// MutateInterests makes every peer add a shared fresh interest to
	// its live profile store halfway through the fault phase — behind
	// any NOT_MODIFIED-primed client caches. The reconvergence oracle
	// reads live stores, so healing must surface the mutation in every
	// group view; a cache that answers stale state keeps the run from
	// converging.
	MutateInterests bool

	// Stall is the per-session probability that a serving session
	// accepts requests but withholds replies — the gray failure a link
	// model cannot express.
	Stall float64
	// StallFor is how long stalled replies are withheld, in modeled
	// time (faults package default when zero).
	StallFor time.Duration
	// Slow is the per-window probability that a device serves at the
	// fault plane's slow factor.
	Slow float64
	// StalledPeers wedges the serving side of the first N peers for the
	// whole fault phase (scheduled whole-device stall windows).
	StalledPeers int
	// CrashedPeers crashes the last N peers for the whole fault phase;
	// lifting the plan is their restart, so reconvergence doubles as
	// the crash–restart recovery check.
	CrashedPeers int
	// Resilience arms every client's degradation machinery: per-peer
	// circuit breakers and hedged reads.
	Resilience bool

	// FaultWindow bounds the plan's active window in modeled time
	// (default one hour — the fault phase is healed explicitly, the
	// window just exercises the plumbing).
	FaultWindow time.Duration
	// Rounds is how many traffic rounds each peer drives while the
	// faults are active (default 2).
	Rounds int
	// Scale is the modeled-to-real latency scale (default 1e-3).
	Scale float64
	// CallTimeout is the per-operation deadline handed to RobustConn
	// (default 30s modeled).
	CallTimeout time.Duration
	// ReconvergeRounds bounds the healing loop (default 40).
	ReconvergeRounds int

	// Gossip attaches the epidemic discovery engine to every peer
	// (scenario.Builder.WithGossip). Gossip rounds are driven in
	// sequential lockstep — sorted member order, one exchange at a time
	// — after the concurrent traffic phase and during every healing
	// round, so the per-pair fault draws stay a pure function of the
	// seed and runs replay byte for byte. Reconvergence then requires
	// the gossip engine's group views to match the fault-free oracle in
	// addition to the fan-out clients'.
	Gossip bool
	// GossipAntiEntropyOnly disables rumor mongering entirely
	// (gossip.Config.DisableRumors): the run must converge on periodic
	// anti-entropy reconciliation alone, which is the degenerate state
	// a lossy world pushes the epidemic toward when every rumor dies
	// before spreading.
	GossipAntiEntropyOnly bool

	// DES runs the deployment on the discrete-event engine
	// (scenario.Builder.WithDES): virtual time advances by popping the
	// event queue instead of sleeping. Every fault knob and the whole
	// verification pipeline is engine-agnostic, so the same Scenario can
	// be run on both engines and compared.
	DES bool

	// DESWorkers overrides the event scheduler's executor count
	// (scenario.Builder.WithDESWorkers); 0 keeps the GOMAXPROCS
	// default. Observables are worker-invariant, so differential and
	// chaos scenarios pass at any setting.
	DESWorkers int

	// DTN attaches the store-carry-forward delivery engine to every
	// peer (scenario.Builder.WithDTN). Each peer originates a seeded
	// batch of addressed messages at the start of the fault phase; DTN
	// rounds are driven in sequential lockstep, under the active faults
	// and again during every healing round. After healing, every
	// message whose source and destination land in the same connected
	// component of the frozen radio graph — and whose TTL has not run
	// out — must be delivered, and every node's custody counters must
	// balance.
	DTN bool
	// DTNSocial selects the social (group-encounter) relay strategy
	// instead of epidemic spray.
	DTNSocial bool
	// DTNMessages is how many messages each peer originates (default 2).
	DTNMessages int
	// DTNTTL is the per-message TTL in rounds (default 64, comfortably
	// past the fault sweeps plus the healing budget).
	DTNTTL int
	// DTNCopyBudget caps spray copies per message (package default when
	// zero).
	DTNCopyBudget int
	// DTNBufferCap bounds each relay's volatile custody buffer (package
	// default when zero); small values force the eviction policy to
	// fire under load.
	DTNBufferCap int
	// DTNEviction picks the relay-buffer eviction policy.
	DTNEviction dtn.EvictionPolicy
}

func (s Scenario) withDefaults() Scenario {
	if s.Peers <= 0 {
		s.Peers = defaultPeers
	}
	if s.Rounds <= 0 {
		s.Rounds = defaultRounds
	}
	if s.Scale <= 0 {
		s.Scale = defaultScale
	}
	if s.CallTimeout <= 0 {
		s.CallTimeout = defaultCallTimeout
	}
	if s.FaultWindow <= 0 {
		if s.endpointFaulty() {
			s.FaultWindow = defaultEndpointWindow
		} else {
			s.FaultWindow = defaultFaultWindow
		}
	}
	if s.ReconvergeRounds <= 0 {
		s.ReconvergeRounds = defaultReconvergeRounds
	}
	if s.StallFor <= 0 {
		s.StallFor = defaultStallFor
	}
	if s.DTNMessages <= 0 {
		s.DTNMessages = defaultDTNMessages
	}
	if s.DTNTTL <= 0 {
		s.DTNTTL = defaultDTNTTL
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("seed-%d", s.Seed)
	}
	return s
}

// Faulty reports whether any fault knob is set.
func (s Scenario) Faulty() bool {
	return s.Loss > 0 || s.Corrupt > 0 || s.Miss > 0 || s.Flap > 0 || s.Partition || s.Churn ||
		s.endpointFaulty()
}

// endpointFaulty reports whether any endpoint-fault knob is set.
func (s Scenario) endpointFaulty() bool {
	return s.Stall > 0 || s.Slow > 0 || s.StalledPeers > 0 || s.CrashedPeers > 0
}

// Result is what one chaos run observed.
type Result struct {
	Scenario Scenario

	// Calls counts budget-measured client operations; CallErrors how
	// many of them failed (degradation, not violation — operations may
	// fail under faults, they may not hang or panic).
	Calls      int
	CallErrors int
	// MaxCallWall is the longest real wall time of one measured
	// operation; CallBudget is the bound it was held to.
	MaxCallWall time.Duration
	CallBudget  time.Duration

	// Reconverged reports whether every peer's group view matched the
	// fault-free oracle after healing, and in how many refresh rounds.
	Reconverged        bool
	RoundsToReconverge int

	// Faults is the plan's own accounting; Events its bounded trace.
	Faults faults.Counters
	Events []faults.Event
	// Net is the transport's accounting.
	Net netsim.Counters
	// Client sums every peer's community.ClientStats: fan-outs, cache
	// hits, NOT_MODIFIED rounds, breaker trips and hedges across the
	// deployment.
	Client community.ClientStats
	// Server sums every peer's community.ServerStats: admissions, shed
	// sessions, rate-limited requests and aborted slow writers.
	Server community.ServerStats
	// Gossip sums every peer's gossip.Stats when the epidemic engine is
	// attached: pushes sent/skipped, rumors died, anti-entropy runs and
	// records reconciled across the deployment.
	Gossip gossip.Stats

	// DTN sums every peer's dtn.Stats when the store-carry-forward
	// engine is attached: custody accepted/delivered/expired/evicted,
	// copies moved, exchange failures.
	DTN dtn.Stats
	// DTNDigest folds every node's custody trace digest in sorted
	// member order — the byte-for-byte replay witness for a whole
	// chaos run.
	DTNDigest uint64
	// DTNSent counts originated messages; DTNDelivered how many reached
	// their destination; DTNRequired how many the reachability oracle
	// demanded (same healed component, TTL not run out).
	DTNSent      int
	DTNDelivered int
	DTNRequired  int
	// DTNConverged reports whether every required message was delivered
	// after healing, and in how many sweeps.
	DTNConverged       bool
	DTNRoundsToDeliver int

	// Violations lists every invariant breach (empty on success).
	Violations []string
}

// Run executes one scenario and reports what happened. Errors are
// infrastructure failures (the world could not be built); invariant
// breaches land in Result.Violations instead.
func Run(s Scenario) (*Result, error) {
	s = s.withDefaults()
	res := &Result{Scenario: s}

	dep, plan, err := buildWorld(s)
	if err != nil {
		return nil, err
	}
	defer dep.Stop()

	env := dep.Env
	clock := env.Clock()
	res.CallBudget = callBudget(env, s.CallTimeout)
	ctx := context.Background()

	// Warm-up: one fault-free discovery round so every daemon knows its
	// neighborhood before the chaos starts.
	if err := dep.RefreshAll(ctx); err != nil {
		return nil, fmt.Errorf("simtest: warm-up: %w", err)
	}

	// Fault phase: install the plan on both substrates and drive
	// traffic through every client concurrently. DTN messages are
	// originated first — custody is taken before the chaos, carried
	// through it.
	dep.Net.SetFaults(plan)
	env.SetInquiryFaults(plan)
	var dtnMsgs []dtnMessage
	if s.DTN {
		setCrashedDTN(s, dep, true)
		msgs, err := sendDTNTraffic(s, dep)
		if err != nil {
			return nil, fmt.Errorf("simtest: originating DTN traffic: %w", err)
		}
		dtnMsgs = msgs
		res.DTNSent = len(dtnMsgs)
	}
	driveTraffic(ctx, s, dep, clock, res)

	// Gossip rounds run under the active faults too, but strictly after
	// the concurrent traffic (wg.Wait above) and in sequential lockstep:
	// each directed pair's connection sequence — what the fault plane
	// draws fates from — stays a pure function of the seed.
	if s.Gossip {
		for sweep := 0; sweep < gossipFaultSweeps; sweep++ {
			driveGossipSweep(ctx, dep)
		}
	}
	// DTN sweeps under fire: same sequential-lockstep discipline, so
	// the custody trace is a pure function of the seed.
	dtnSweeps := 0
	if s.DTN {
		for sweep := 0; sweep < dtnFaultSweeps; sweep++ {
			driveDTNSweep(ctx, dep)
			dtnSweeps++
		}
	}

	// Heal: lift the plan entirely and freeze mobility, so the
	// reconvergence oracle is computed over a static, fault-free world.
	dep.Net.SetFaults(nil)
	env.SetInquiryFaults(nil)
	if s.DTN {
		// Lifting the plan is the crashed peers' restart: volatile relay
		// custody is gone, sources and delivered state persist.
		restartCrashedDTN(s, dep)
	}
	if err := freezeMobility(dep); err != nil {
		return nil, fmt.Errorf("simtest: freezing mobility: %w", err)
	}

	res.Reconverged, res.RoundsToReconverge = reconverge(ctx, s, dep)
	if !res.Reconverged {
		res.Violations = append(res.Violations,
			fmt.Sprintf("group views did not reconverge to the oracle within %d rounds", s.ReconvergeRounds))
	}

	if s.DTN {
		res.DTNConverged, res.DTNRoundsToDeliver = dtnConverge(ctx, s, dep, dtnMsgs, &dtnSweeps, res)
	}

	res.Faults = plan.Counters()
	res.Events = plan.Events()
	res.Net = dep.Net.Counters()
	for _, m := range dep.Members() {
		res.Client.Add(dep.MustPeer(m).Client.Stats())
		res.Server.Add(dep.MustPeer(m).Server.Stats())
		if g := dep.MustPeer(m).Gossip; g != nil {
			res.Gossip.Add(g.Stats())
		}
		if n := dep.MustPeer(m).DTN; n != nil {
			st := n.Stats()
			res.DTN.Add(st)
			if !st.CustodyBalanced() {
				res.Violations = append(res.Violations,
					fmt.Sprintf("peer %s: DTN custody counters unbalanced: %+v", m, st))
			}
			res.DTNDigest = res.DTNDigest*1099511628211 ^ n.TraceDigest()
		}
	}
	return res, nil
}

// gossipFaultSweeps is how many sequential gossip sweeps run while the
// fault plan is active: enough for rumors to spread (and die) under
// fire, before healing hands convergence to the reconverge loop.
const gossipFaultSweeps = 4

// driveGossipSweep runs one gossip round on every peer in sorted
// member order, one at a time. Each Round fully settles its exchanges
// (the protocol's closing acks guarantee the partner applied the
// frames) before the next peer starts, which keeps the whole epidemic
// schedule deterministic.
func driveGossipSweep(ctx context.Context, dep *scenario.Deployment) {
	for _, m := range dep.Members() {
		if g := dep.MustPeer(m).Gossip; g != nil {
			g.Round(ctx)
		}
	}
}

// dtnFaultSweeps is how many sequential DTN rounds run while the
// fault plan is active: enough for custody to spread onto relays (and
// for copies to strand on links the faults then cut), before healing
// hands delivery to the convergence loop.
const dtnFaultSweeps = 4

// Defaults for the DTN knobs left zero.
const (
	defaultDTNMessages = 2
	// defaultDTNTTL comfortably outlasts the fault sweeps plus the
	// healing budget, so matrix messages only expire when a scenario
	// shortens it on purpose.
	defaultDTNTTL = 64
)

// dtnMessage tracks one originated message through a chaos run.
type dtnMessage struct {
	ID        string
	Src, Dst  ids.MemberID
	TTL       int
	SentSweep int
}

// driveDTNSweep runs one DTN round on every peer in sorted member
// order, one at a time — the same lockstep discipline as gossip, so
// contact order and fault draws replay exactly from the seed.
func driveDTNSweep(ctx context.Context, dep *scenario.Deployment) {
	for _, m := range dep.Members() {
		if n := dep.MustPeer(m).DTN; n != nil {
			n.Round(ctx)
		}
	}
}

// sendDTNTraffic originates each peer's seeded message batch. Sends
// are local custody operations (the outbox takes the message), so they
// succeed regardless of the active faults — carrying the message
// through them is the engine's job.
func sendDTNTraffic(s Scenario, dep *scenario.Deployment) ([]dtnMessage, error) {
	members := dep.Members()
	rng := rand.New(rand.NewSource(s.Seed ^ 0x64746e))
	var out []dtnMessage
	for i, m := range members {
		peer := dep.MustPeer(m)
		if peer.DTN == nil {
			continue
		}
		for k := 0; k < s.DTNMessages; k++ {
			dst := members[(i+1+rng.Intn(len(members)-1))%len(members)]
			dstDev := dep.MustPeer(dst).Daemon.Device()
			payload := []byte(fmt.Sprintf("dtn %s->%s #%d", m, dst, k))
			id, err := peer.DTN.SendTTL(dstDev, payload, s.DTNTTL)
			if err != nil {
				// A crashed origin cannot accept local sends; that message
				// simply never exists.
				if s.CrashedPeers > 0 {
					continue
				}
				return nil, err
			}
			out = append(out, dtnMessage{ID: id, Src: m, Dst: dst, TTL: s.DTNTTL})
		}
	}
	return out, nil
}

// setCrashedDTN marks the crash-window peers' DTN nodes down while the
// fault plan holds them crashed; the radio/transport fault plane
// already makes them invisible, this keeps their local engine honest
// (no rounds, no sends).
func setCrashedDTN(s Scenario, dep *scenario.Deployment, down bool) {
	members := dep.Members()
	for i := 0; i < s.CrashedPeers && i < len(members); i++ {
		if n := dep.MustPeer(members[len(members)-1-i]).DTN; n != nil {
			n.SetDown(down)
		}
	}
}

// restartCrashedDTN is the crashed peers' reboot: volatile relay
// custody and encounter memory are dropped, then the node comes back
// up. Originated messages and delivered state survive, so post-heal
// delivery of everything unexpired stays provable.
func restartCrashedDTN(s Scenario, dep *scenario.Deployment) {
	members := dep.Members()
	for i := 0; i < s.CrashedPeers && i < len(members); i++ {
		if n := dep.MustPeer(members[len(members)-1-i]).DTN; n != nil {
			n.DropVolatile()
			n.SetDown(false)
		}
	}
}

// dtnComponents computes connected components of the healed, frozen
// radio graph — the analytic reachability oracle: a store-carry-
// forward path exists between two members iff they share a component.
func dtnComponents(dep *scenario.Deployment) map[ids.MemberID]int {
	members := dep.Members()
	byDevice := make(map[ids.DeviceID]ids.MemberID, len(members))
	for _, m := range members {
		byDevice[dep.MustPeer(m).Daemon.Device()] = m
	}
	comp := make(map[ids.MemberID]int, len(members))
	next := 0
	for _, m := range members {
		if _, seen := comp[m]; seen {
			continue
		}
		next++
		queue := []ids.MemberID{m}
		comp[m] = next
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			dev := dep.MustPeer(cur).Daemon.Device()
			for _, nd := range dep.Env.Neighbors(dev, radio.Bluetooth) {
				om, ok := byDevice[nd]
				if !ok {
					continue
				}
				if _, seen := comp[om]; !seen {
					comp[om] = next
					queue = append(queue, om)
				}
			}
		}
	}
	return comp
}

// dtnConverge drives healing DTN sweeps until every required message —
// source and destination in the same healed component, TTL not yet run
// out — is delivered, or the round budget is spent. Undelivered
// required messages are invariant breaches.
func dtnConverge(ctx context.Context, s Scenario, dep *scenario.Deployment, msgs []dtnMessage, sweeps *int, res *Result) (bool, int) {
	comp := dtnComponents(dep)
	for round := 1; round <= s.ReconvergeRounds; round++ {
		driveDTNSweep(ctx, dep)
		*sweeps++
		allDone := true
		delivered := 0
		for _, msg := range msgs {
			if dep.MustPeer(msg.Dst).DTN.Consumed(msg.ID) {
				delivered++
				continue
			}
			if *sweeps-msg.SentSweep >= msg.TTL {
				continue // expired everywhere: exempt by TTL policy
			}
			if comp[msg.Src] != comp[msg.Dst] {
				continue // unreachable in the healed world: exempt
			}
			allDone = false
		}
		if allDone {
			res.DTNDelivered = delivered
			required := 0
			for _, msg := range msgs {
				if comp[msg.Src] == comp[msg.Dst] && *sweeps-msg.SentSweep < msg.TTL {
					required++
				}
			}
			res.DTNRequired = required
			return true, round
		}
	}
	delivered := 0
	for _, msg := range msgs {
		if dep.MustPeer(msg.Dst).DTN.Consumed(msg.ID) {
			delivered++
			continue
		}
		if *sweeps-msg.SentSweep >= msg.TTL || comp[msg.Src] != comp[msg.Dst] {
			continue
		}
		res.Violations = append(res.Violations,
			fmt.Sprintf("DTN message %s (%s→%s) reachable and unexpired but undelivered after %d healing sweeps",
				msg.ID, msg.Src, msg.Dst, s.ReconvergeRounds))
	}
	res.DTNDelivered = delivered
	return false, s.ReconvergeRounds
}

// buildWorld assembles the deployment and the fault plan for a
// scenario. Peers stand on a circle well inside Bluetooth range;
// churn replaces the static placement with seeded random-waypoint
// movement in a box around the circle.
func buildWorld(s Scenario) (*scenario.Deployment, *faults.Plan, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	b := scenario.NewBuilder().WithScale(vtime.NewScale(s.Scale)).WithSeed(s.Seed)
	if s.DES {
		b.WithDES(0)
		if s.DESWorkers > 0 {
			b.WithDESWorkers(s.DESWorkers)
		}
	}
	devices := make([]ids.DeviceID, 0, s.Peers)
	for i := 0; i < s.Peers; i++ {
		member := ids.MemberID(fmt.Sprintf("m%02d", i))
		spec := scenario.PeerSpec{
			Member:    member,
			Position:  circlePos(i, s.Peers),
			Interests: pickInterests(rng, i),
		}
		if s.Churn {
			region := geo.NewRect(geo.Pt(14, 14), geo.Pt(26, 26))
			spec.Mobility = mobility.NewRandomWaypoint(region, 0.5, 2.0, time.Second, s.Seed+int64(i)*7919)
		}
		b.AddPeer(spec)
		devices = append(devices, ids.DeviceID("dev-"+string(member)))
	}
	if s.Resilience {
		// Hedging wants a primed latency window; a low sample gate lets
		// the short chaos workloads reach it.
		b.WithResilience(community.ResilienceOptions{Hedge: true, HedgeMinSamples: 8})
	}
	if s.DTN {
		cfg := dtn.Config{
			CopyBudget: s.DTNCopyBudget,
			BufferCap:  s.DTNBufferCap,
			TTLRounds:  s.DTNTTL,
			Eviction:   s.DTNEviction,
		}
		if s.DTNSocial {
			cfg.Strategy = dtn.Social
		}
		b.WithDTN(cfg)
	}
	if s.Gossip {
		cfg := gossip.Config{DisableRumors: s.GossipAntiEntropyOnly}
		if s.GossipAntiEntropyOnly {
			// With the push phase suppressed, reconciliation is the only
			// propagation path; run it every other round so convergence
			// lands inside the healing budget.
			cfg.AEEvery = 2
		}
		b.WithGossip(cfg)
	}
	dep, err := b.Build()
	if err != nil {
		return nil, nil, err
	}

	plan := faults.New(s.Seed).
		SetLink(faults.LinkProfile{
			Loss:           s.Loss,
			MaxRetransmits: defaultMaxRetransmits,
			Corrupt:        s.Corrupt,
			FlapRate:       s.Flap,
		}).
		SetRadio(faults.RadioProfile{Miss: s.Miss}).
		SetEndpoints(faults.EndpointProfile{
			StallRate: s.Stall,
			StallFor:  s.StallFor,
			SlowRate:  s.Slow,
		}).
		SetActiveWindow(s.FaultWindow)
	for i := 0; i < s.StalledPeers && i < len(devices); i++ {
		plan = plan.AddStall(faults.StallWindow{Device: devices[i], Start: 0, End: s.FaultWindow})
	}
	for i := 0; i < s.CrashedPeers && i < len(devices); i++ {
		plan = plan.AddCrash(faults.CrashWindow{Device: devices[len(devices)-1-i], Start: 0, End: s.FaultWindow})
	}
	if s.Partition {
		half := len(devices) / 2
		plan = plan.AddPartition(faults.PartitionWindow{
			GroupA: devices[:half],
			GroupB: devices[half:],
			Start:  0,
			End:    s.FaultWindow,
		})
	}
	return dep, plan, nil
}

// circlePos places peer i of n on a radius-4 circle around (20, 20):
// every pairwise distance is under 8 m, inside the 10 m Bluetooth
// range, so the fault-free world is fully connected.
func circlePos(i, n int) geo.Point {
	angle := 2 * math.Pi * float64(i) / float64(n)
	return geo.Pt(20+4*math.Cos(angle), 20+4*math.Sin(angle))
}

// pickInterests gives peer i a guaranteed interest from the pool (so
// overlap exists) plus an optional second draw.
func pickInterests(rng *rand.Rand, i int) []string {
	out := []string{interestPool[i%len(interestPool)]}
	if rng.Intn(2) == 1 {
		second := interestPool[rng.Intn(len(interestPool))]
		if second != out[0] {
			out = append(out, second)
		}
	}
	return out
}

// callBudget is the real-time bound one measured client operation is
// held to: client operations chain at most a handful of sequential
// robust calls (resolve, check, the operation itself), each bounded by
// the RobustConn deadline — which the peerhood layer floors at 2s real
// so latency scales don't turn scheduler jitter into timeouts.
func callBudget(env *radio.Environment, modeled time.Duration) time.Duration {
	const floor = 2 * time.Second
	d := env.Scale().ToReal(modeled)
	if d < floor {
		d = floor
	}
	return 4*d + time.Second
}

// driveTraffic runs every peer's seeded workload concurrently and
// merges the observations into res.
func driveTraffic(ctx context.Context, s Scenario, dep *scenario.Deployment, clock vtime.Clock, res *Result) {
	members := dep.Members()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, m := range members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := dep.MustPeer(m)
			rng := rand.New(rand.NewSource(s.Seed + 104729*int64(i+1)))
			for round := 0; round < s.Rounds; round++ {
				// Discovery is not budget-measured: its duration is set
				// by inquiry windows, not by RobustConn deadlines.
				_ = peer.Daemon.RefreshNow(ctx)

				// Mid-phase mutation: edit the live store behind any
				// conditional caches primed by the earlier rounds.
				if s.MutateInterests && round == s.Rounds/2 {
					_ = peer.Store.AddInterest(m, mutationInterest)
				}

				ops := []func() error{
					func() error { _, err := peer.Client.RefreshGroups(ctx); return err },
					func() error { _, err := peer.Client.OnlineMembers(ctx); return err },
					func() error {
						to := members[rng.Intn(len(members))]
						if to == m {
							return nil
						}
						return peer.Client.SendMessage(ctx, to, "chaos", fmt.Sprintf("r%d from %s", round, m))
					},
				}
				for _, op := range ops {
					start := clock.Now()
					err := op()
					wall := clock.Now().Sub(start)
					mu.Lock()
					res.Calls++
					if err != nil {
						res.CallErrors++
					}
					if wall > res.MaxCallWall {
						res.MaxCallWall = wall
					}
					if wall > res.CallBudget {
						res.Violations = append(res.Violations,
							fmt.Sprintf("peer %s round %d: operation took %v, budget %v", m, round, wall, res.CallBudget))
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
}

// freezeMobility pins every device at its current position so the
// oracle and the daemons see the same static world.
func freezeMobility(dep *scenario.Deployment) error {
	for _, m := range dep.Members() {
		dev := dep.MustPeer(m).Daemon.Device()
		pos, err := dep.Env.Position(dev)
		if err != nil {
			return err
		}
		if err := dep.Env.SetModel(dev, mobility.Static{At: pos}); err != nil {
			return err
		}
	}
	return nil
}

// groupView is the canonical comparison form of a node's dynamic
// groups: interest → sorted member IDs.
type groupView map[string][]string

func canonical(groups []core.Group) groupView {
	out := make(groupView, len(groups))
	for _, g := range groups {
		ms := make([]string, 0, len(g.Members))
		for _, m := range g.Members {
			ms = append(ms, string(m.ID))
		}
		sort.Strings(ms)
		out[g.Interest] = ms
	}
	return out
}

// oracleView computes what a peer's groups must be in the healed
// world: DiscoverGroups over its actual radio neighbors, with every
// member's interests read from their live profile store.
func oracleView(dep *scenario.Deployment, m ids.MemberID, byDevice map[ids.DeviceID]ids.MemberID) (groupView, error) {
	self, err := liveMember(dep, m)
	if err != nil {
		return nil, err
	}
	var nearby []core.Member
	for _, dev := range dep.Env.Neighbors(self.Device, radio.Bluetooth) {
		other, ok := byDevice[dev]
		if !ok {
			continue
		}
		om, err := liveMember(dep, other)
		if err != nil {
			return nil, err
		}
		nearby = append(nearby, om)
	}
	return canonical(core.DiscoverGroups(self, nearby, nil)), nil
}

// liveMember snapshots a peer as a core.Member with its store's
// current interests.
func liveMember(dep *scenario.Deployment, m ids.MemberID) (core.Member, error) {
	peer := dep.MustPeer(m)
	p, err := peer.Store.ActiveProfile()
	if err != nil {
		return core.Member{}, err
	}
	return core.Member{Device: peer.Daemon.Device(), ID: m, Interests: p.Interests}, nil
}

// reconvergePause is the real-time wait between failed healing rounds.
// It exists for the breaker scenarios: an open breaker's real-time
// floor is half a second, and without the pause a fast fail-fast loop
// would burn its whole round budget before any half-open probe could
// fire.
const reconvergePause = 25 * time.Millisecond

// reconverge refreshes every node until each one's group view matches
// the oracle, or the round budget runs out.
func reconverge(ctx context.Context, s Scenario, dep *scenario.Deployment) (bool, int) {
	members := dep.Members()
	byDevice := make(map[ids.DeviceID]ids.MemberID, len(members))
	for _, m := range members {
		byDevice[dep.MustPeer(m).Daemon.Device()] = m
	}
	clock := dep.Env.Clock()
	for round := 1; round <= s.ReconvergeRounds; round++ {
		if round > 1 {
			clock.Sleep(reconvergePause)
		}
		for _, m := range members {
			peer := dep.MustPeer(m)
			_ = peer.Daemon.RefreshNow(ctx)
			_, _ = peer.Client.RefreshGroups(ctx)
		}
		// One sequential gossip sweep per healing round: the epidemic
		// converges alongside the fan-out clients and must reach the
		// same oracle.
		if s.Gossip {
			driveGossipSweep(ctx, dep)
		}
		converged := true
		for _, m := range members {
			want, err := oracleView(dep, m, byDevice)
			if err != nil {
				converged = false
				break
			}
			got := canonical(dep.MustPeer(m).Client.Groups())
			if !reflect.DeepEqual(got, want) {
				converged = false
				break
			}
			if g := dep.MustPeer(m).Gossip; g != nil {
				g.Refresh()
				if !reflect.DeepEqual(canonical(g.Groups()), want) {
					converged = false
					break
				}
			}
		}
		if converged {
			return true, round
		}
	}
	return false, s.ReconvergeRounds
}

// Matrix generates n seeded scenarios sweeping the fault axes — loss ×
// corruption × missed inquiries × flaps × partition × churn × size —
// deterministically from a base seed.
func Matrix(n int, baseSeed int64) []Scenario {
	losses := []float64{0, 0.05, 0.15, 0.3}
	corrupts := []float64{0, 0.1}
	misses := []float64{0, 0.2}
	flaps := []float64{0, 0.04}
	out := make([]Scenario, 0, n)
	for i := 0; len(out) < n; i++ {
		s := Scenario{
			Seed:      baseSeed + int64(i)*1009,
			Peers:     4 + (i%3)*2, // 4, 6, 8
			Loss:      losses[i%len(losses)],
			Corrupt:   corrupts[(i/4)%len(corrupts)],
			Miss:      misses[(i/8)%len(misses)],
			Flap:      flaps[(i/16)%len(flaps)],
			Partition: i%3 == 1,
			Churn:     i%2 == 1,
		}
		s.Name = fmt.Sprintf("chaos-%02d-l%02.0f-c%02.0f-m%02.0f-f%02.0f-p%d-ch%d-n%d",
			i, s.Loss*100, s.Corrupt*100, s.Miss*100, s.Flap*100, b2i(s.Partition), b2i(s.Churn), s.Peers)
		out = append(out, s)
	}
	return out
}

// EndpointMatrix generates n seeded scenarios composing endpoint
// faults — per-session stalls, slow devices, wedged peers, crash–
// restart churn — with the link-level axes, all with client resilience
// armed: the breakers and hedges must keep every run inside its call
// budget and reconverging after the heal.
func EndpointMatrix(n int, baseSeed int64) []Scenario {
	stalls := []float64{0, 0.15, 0.3}
	slows := []float64{0, 0.2}
	losses := []float64{0, 0.05}
	flaps := []float64{0, 0.04}
	out := make([]Scenario, 0, n)
	for i := 0; len(out) < n; i++ {
		s := Scenario{
			Seed:         baseSeed + int64(i)*2003,
			Peers:        4 + (i%2)*2, // 4, 6
			Stall:        stalls[i%len(stalls)],
			Slow:         slows[(i/3)%len(slows)],
			Loss:         losses[(i/6)%len(losses)],
			Flap:         flaps[(i/12)%len(flaps)],
			StalledPeers: i % 2,       // every odd scenario wedges one peer
			CrashedPeers: (i / 2) % 2, // every other pair crash-restarts one
			Partition:    i%5 == 4,
			Resilience:   true,
		}
		s.Name = fmt.Sprintf("endpoint-%02d-st%02.0f-sl%02.0f-l%02.0f-f%02.0f-w%d-cr%d-p%d-n%d",
			i, s.Stall*100, s.Slow*100, s.Loss*100, s.Flap*100,
			s.StalledPeers, s.CrashedPeers, b2i(s.Partition), s.Peers)
		out = append(out, s)
	}
	return out
}

// GossipMatrix generates n seeded link-fault scenarios with the
// epidemic engine running beside the fan-out clients: both must
// reconverge to the same fault-free oracle after healing. Every fourth
// scenario suppresses rumor pushes entirely (anti-entropy only), so
// the matrix continuously proves the reconciliation path converges on
// its own under loss, corruption and partitions.
func GossipMatrix(n int, baseSeed int64) []Scenario {
	losses := []float64{0, 0.05, 0.15, 0.3}
	corrupts := []float64{0, 0.1}
	flaps := []float64{0, 0.04}
	out := make([]Scenario, 0, n)
	for i := 0; len(out) < n; i++ {
		s := Scenario{
			Seed:                  baseSeed + int64(i)*3001,
			Peers:                 4 + (i%3)*2, // 4, 6, 8
			Loss:                  losses[i%len(losses)],
			Corrupt:               corrupts[(i/4)%len(corrupts)],
			Flap:                  flaps[(i/8)%len(flaps)],
			Partition:             i%3 == 1,
			Gossip:                true,
			GossipAntiEntropyOnly: i%4 == 3,
		}
		s.Name = fmt.Sprintf("gossip-%02d-l%02.0f-c%02.0f-f%02.0f-p%d-ae%d-n%d",
			i, s.Loss*100, s.Corrupt*100, s.Flap*100, b2i(s.Partition), b2i(s.GossipAntiEntropyOnly), s.Peers)
		out = append(out, s)
	}
	return out
}

// DTNMatrix generates n seeded scenarios with the store-carry-forward
// engine running: loss × corruption × flaps × partitions ×
// crash-restarts × relay strategy × eviction policy × tight buffers.
// Every run must deliver every reachable unexpired message after
// healing and keep custody counters balanced on every node. Social
// scenarios keep churn off so the healed world is the fully-connected
// circle (social relay guarantees direct-contact delivery there;
// epidemic guarantees delivery on any connected graph).
func DTNMatrix(n int, baseSeed int64) []Scenario {
	losses := []float64{0, 0.05, 0.15, 0.3}
	corrupts := []float64{0, 0.1}
	flaps := []float64{0, 0.04}
	evictions := []dtn.EvictionPolicy{dtn.EvictOldest, dtn.EvictLargest, dtn.EvictSocialTail}
	out := make([]Scenario, 0, n)
	for i := 0; len(out) < n; i++ {
		social := i%2 == 1
		s := Scenario{
			Seed:         baseSeed + int64(i)*4013,
			Peers:        4 + (i%3)*2, // 4, 6, 8
			Loss:         losses[i%len(losses)],
			Corrupt:      corrupts[(i/4)%len(corrupts)],
			Flap:         flaps[(i/8)%len(flaps)],
			Partition:    i%3 == 1,
			Churn:        !social && i%5 == 2,
			CrashedPeers: (i / 2) % 2,
			DTN:          true,
			DTNSocial:    social,
			DTNEviction:  evictions[i%len(evictions)],
		}
		if i%4 == 2 {
			// Tight relay buffers: eviction must fire and stay accounted.
			s.DTNBufferCap = 2
		}
		s.Name = fmt.Sprintf("dtn-%02d-l%02.0f-c%02.0f-f%02.0f-p%d-cr%d-%s-%s-n%d",
			i, s.Loss*100, s.Corrupt*100, s.Flap*100, b2i(s.Partition), s.CrashedPeers,
			strategyTag(s.DTNSocial), s.DTNEviction, s.Peers)
		out = append(out, s)
	}
	return out
}

func strategyTag(social bool) string {
	if social {
		return "social"
	}
	return "epidemic"
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
