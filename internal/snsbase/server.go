package snsbase

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// servicePort is the port the SNS front-end listens on.
const servicePort = "sns.http"

// Server is the centralized SNS: a group directory, join lists and
// member profiles behind one front-end — the thing the thesis contrasts
// with the serverless PeerHood approach ("SNS needs a centralized
// server and a centralized database system").
type Server struct {
	site SiteProfile
	dev  ids.DeviceID
	net  *netsim.Network

	mu       sync.Mutex
	groups   map[string]*group
	profiles map[string]Profile

	listener *netsim.Listener
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

type group struct {
	Name    string
	Members map[string]bool
}

// Profile is a member profile on the SNS.
type Profile struct {
	Member   string `json:"member"`
	FullName string `json:"full_name"`
	About    string `json:"about"`
}

// request/response are the front-end's JSON wire format. PadBytes in
// the response models the page weight the handset must download.
type request struct {
	Op     string `json:"op"`
	User   string `json:"user"`
	Query  string `json:"query,omitempty"`
	Group  string `json:"group,omitempty"`
	Member string `json:"member,omitempty"`
}

type response struct {
	Status  string   `json:"status"`
	Groups  []string `json:"groups,omitempty"`
	Members []string `json:"members,omitempty"`
	Profile *Profile `json:"profile,omitempty"`
	Pad     string   `json:"pad,omitempty"`
}

// NewServer creates the SNS back-end on a device in the environment
// (the device stands in for the site's data center; clients reach it
// over GPRS).
func NewServer(net *netsim.Network, dev ids.DeviceID, site SiteProfile) (*Server, error) {
	s := &Server{
		site:     site,
		dev:      dev,
		net:      net,
		groups:   make(map[string]*group),
		profiles: make(map[string]Profile),
	}
	listener, err := net.Listen(dev, servicePort)
	if err != nil {
		return nil, fmt.Errorf("snsbase: %w", err)
	}
	s.listener = listener
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s, nil
}

// Stop shuts the server down.
func (s *Server) Stop() {
	s.cancel()
	s.listener.Close()
	s.wg.Wait()
}

// Site returns the server's site profile.
func (s *Server) Site() SiteProfile { return s.site }

// SeedGroup creates a group with members, like the pre-existing
// "England Football" group the thesis searched for.
func (s *Server) SeedGroup(name string, members ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := &group{Name: name, Members: make(map[string]bool, len(members))}
	for _, m := range members {
		g.Members[m] = true
		if _, ok := s.profiles[m]; !ok {
			s.profiles[m] = Profile{Member: m, FullName: m, About: "seeded member"}
		}
	}
	s.groups[strings.ToLower(name)] = g
}

// SeedProfile registers a member profile.
func (s *Server) SeedProfile(p Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[p.Member] = p
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept(ctx)
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { _ = conn.Close() }()
			for {
				frame, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				var req request
				resp := response{Status: "ok"}
				if err := json.Unmarshal(frame, &req); err != nil {
					resp.Status = "bad-request"
				} else {
					resp = s.handle(req)
				}
				out, err := json.Marshal(resp)
				if err != nil {
					return
				}
				if err := conn.Send(out); err != nil {
					return
				}
			}
		}()
	}
}

// pad returns filler bytes so the serialized response weighs about n
// bytes, modeling the page weight.
func pad(base, n int) string {
	if n <= base {
		return ""
	}
	return strings.Repeat("x", n-base)
}

// approxEnvelope is the JSON overhead estimate subtracted from padding.
const approxEnvelope = 200

func (s *Server) handle(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case "search":
		var names []string
		q := strings.ToLower(req.Query)
		for key, g := range s.groups {
			if strings.Contains(key, q) {
				names = append(names, g.Name)
			}
		}
		sort.Strings(names)
		return response{
			Status: "ok",
			Groups: names,
			Pad:    pad(approxEnvelope, s.site.Search.TotalBytes()),
		}
	case "create":
		key := strings.ToLower(req.Group)
		if key == "" {
			return response{Status: "bad-request"}
		}
		if _, exists := s.groups[key]; exists {
			return response{Status: "group-exists"}
		}
		s.groups[key] = &group{Name: req.Group, Members: map[string]bool{req.User: true}}
		return response{
			Status: "ok",
			Pad:    pad(approxEnvelope, s.site.Join.TotalBytes()),
		}
	case "join":
		g, ok := s.groups[strings.ToLower(req.Group)]
		if !ok {
			return response{Status: "no-such-group"}
		}
		g.Members[req.User] = true
		return response{
			Status: "ok",
			Pad:    pad(approxEnvelope, s.site.Join.TotalBytes()),
		}
	case "members":
		g, ok := s.groups[strings.ToLower(req.Group)]
		if !ok {
			return response{Status: "no-such-group"}
		}
		members := make([]string, 0, len(g.Members))
		for m := range g.Members {
			members = append(members, m)
		}
		sort.Strings(members)
		return response{
			Status:  "ok",
			Members: members,
			Pad:     pad(approxEnvelope, s.site.List.TotalBytes()),
		}
	case "profile":
		p, ok := s.profiles[req.Member]
		if !ok {
			return response{Status: "no-such-member"}
		}
		return response{
			Status:  "ok",
			Profile: &p,
			Pad:     pad(approxEnvelope, s.site.Profile.TotalBytes()),
		}
	default:
		return response{Status: "bad-request"}
	}
}

// Client is the handset-side SNS client: it performs the four Table 8
// operations over the cellular link and charges the handset's
// per-page render time after each page arrives.
type Client struct {
	net     *netsim.Network
	dev     ids.DeviceID
	server  ids.DeviceID
	handset HandsetProfile
	site    SiteProfile
	user    string

	mu   sync.Mutex
	conn *netsim.Conn
}

// NewClient creates a handset client for a user.
func NewClient(net *netsim.Network, dev, server ids.DeviceID, handset HandsetProfile, site SiteProfile, user string) *Client {
	return &Client{net: net, dev: dev, server: server, handset: handset, site: site, user: user}
}

// connect dials the front-end lazily (the thesis's handsets kept a data
// session open once the browser started). The dial — a full simulated
// GPRS connection setup — happens with the mutex released so a slow
// attach never wedges a concurrent Close; a racing connect keeps the
// winner's session.
func (c *Client) connect(ctx context.Context) (*netsim.Conn, error) {
	c.mu.Lock()
	if c.conn != nil && c.conn.Alive() {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := c.net.Dial(ctx, c.dev, c.server, radio.GPRS, servicePort)
	if err != nil {
		return nil, fmt.Errorf("snsbase: dialing site: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil && c.conn.Alive() {
		_ = conn.Close() // lost the race; keep the established session
		return c.conn, nil
	}
	c.conn = conn
	return conn, nil
}

// Close drops the data session.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close() // dropping the session; the error has no consumer
		c.conn = nil
	}
}

// render charges the handset's page render cost, scaled.
func (c *Client) render(pages int) {
	env := c.net.Environment()
	env.Clock().Sleep(env.Scale().ToReal(time.Duration(pages) * c.handset.RenderPerPage))
}

// call performs one request/response.
func (c *Client) call(ctx context.Context, req request) (response, error) {
	conn, err := c.connect(ctx)
	if err != nil {
		return response{}, err
	}
	req.User = c.user
	out, err := json.Marshal(req)
	if err != nil {
		return response{}, err
	}
	if err := conn.Send(out); err != nil {
		return response{}, err
	}
	frame, err := conn.Recv(ctx)
	if err != nil {
		return response{}, err
	}
	var resp response
	if err := json.Unmarshal(frame, &resp); err != nil {
		return response{}, err
	}
	if resp.Status != "ok" {
		return resp, fmt.Errorf("snsbase: %s", resp.Status)
	}
	return resp, nil
}

// CreateGroup creates a new group with the user as its first member —
// the manual flow the thesis contrasts with dynamic discovery: "users
// need to create their interest group themselves and advertise it to
// others to join that group" (§3.2). It costs a page load like join.
func (c *Client) CreateGroup(ctx context.Context, groupName string) error {
	if _, err := c.call(ctx, request{Op: "create", Group: groupName}); err != nil {
		return err
	}
	c.render(c.site.Join.Count)
	return nil
}

// SearchGroup loads the search flow and returns matching group names.
func (c *Client) SearchGroup(ctx context.Context, query string) ([]string, error) {
	resp, err := c.call(ctx, request{Op: "search", Query: query})
	if err != nil {
		return nil, err
	}
	c.render(c.site.Search.Count)
	return resp.Groups, nil
}

// JoinGroup submits the join flow.
func (c *Client) JoinGroup(ctx context.Context, groupName string) error {
	if _, err := c.call(ctx, request{Op: "join", Group: groupName}); err != nil {
		return err
	}
	c.render(c.site.Join.Count)
	return nil
}

// MemberList loads a group's member list.
func (c *Client) MemberList(ctx context.Context, groupName string) ([]string, error) {
	resp, err := c.call(ctx, request{Op: "members", Group: groupName})
	if err != nil {
		return nil, err
	}
	c.render(c.site.List.Count)
	return resp.Members, nil
}

// ViewProfile loads one member's profile page.
func (c *Client) ViewProfile(ctx context.Context, member string) (Profile, error) {
	resp, err := c.call(ctx, request{Op: "profile", Member: member})
	if err != nil {
		return Profile{}, err
	}
	c.render(c.site.Profile.Count)
	if resp.Profile == nil {
		return Profile{}, fmt.Errorf("snsbase: empty profile for %q", member)
	}
	return *resp.Profile, nil
}
