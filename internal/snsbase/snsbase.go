// Package snsbase implements the comparison baseline of Table 8: a
// centralized social networking site (SNS) reached from a handset over
// the cellular network. The thesis timed searching an interest group,
// joining it, viewing the member list and viewing one profile on
// Facebook and Hi5 from a Nokia N810 and N95; neither those sites nor
// the handsets are available here, so this package reproduces the
// *interaction path* instead: a directory server with groups, join
// lists and profiles, reached over the simulated GPRS link, where each
// operation loads pages whose byte weights are calibrated per site and
// whose client-side render time is calibrated per handset.
//
// What makes the baseline slow — and the thing the paper's comparison
// hinges on — is structural: every operation crosses the high-latency,
// low-bandwidth cellular link to a central server and renders heavy
// pages, while PeerHood Community answers from peers a Bluetooth hop
// away with a pre-warmed neighbor cache and zero join cost.
package snsbase

import (
	"time"
)

// SiteProfile calibrates one SNS's page weights per operation.
type SiteProfile struct {
	Name string
	// SearchPages / JoinPages / ListPages / ProfilePages describe how
	// many page loads the operation takes and how heavy each is.
	Search  PageSpec
	Join    PageSpec
	List    PageSpec
	Profile PageSpec
}

// PageSpec is a page-load sequence: Count loads of Bytes each.
type PageSpec struct {
	Count int
	Bytes int
}

// TotalBytes returns the bytes transferred for the sequence.
func (p PageSpec) TotalBytes() int { return p.Count * p.Bytes }

// HandsetProfile calibrates the client device: how long it takes to
// render one page (CPU + browser stack), per Table 8's observation that
// the same site is consistently slower on the N95 than on the N810.
type HandsetProfile struct {
	Name          string
	RenderPerPage time.Duration
}

// Facebook returns the Facebook site profile (the thesis's first two
// columns). Weights are calibrated so the modeled times land near
// Table 8 on the default GPRS PHY.
func Facebook() SiteProfile {
	return SiteProfile{
		Name:    "Facebook",
		Search:  PageSpec{Count: 2, Bytes: 100_000},
		Join:    PageSpec{Count: 1, Bytes: 40_000},
		List:    PageSpec{Count: 1, Bytes: 25_000},
		Profile: PageSpec{Count: 1, Bytes: 50_000},
	}
}

// Hi5 returns the Hi5 site profile (the thesis's third and fourth
// columns): lighter search pages than Facebook but a heavier join flow
// and heavier profile pages, matching the orderings in Table 8.
func Hi5() SiteProfile {
	return SiteProfile{
		Name:    "Hi5",
		Search:  PageSpec{Count: 2, Bytes: 80_000},
		Join:    PageSpec{Count: 1, Bytes: 80_000},
		List:    PageSpec{Count: 1, Bytes: 60_000},
		Profile: PageSpec{Count: 1, Bytes: 90_000},
	}
}

// NokiaN810 returns the N810 handset profile (fast tablet browser).
func NokiaN810() HandsetProfile {
	return HandsetProfile{Name: "Nokia N810", RenderPerPage: 7 * time.Second}
}

// NokiaN95 returns the N95 handset profile (slower smartphone browser).
func NokiaN95() HandsetProfile {
	return HandsetProfile{Name: "Nokia N95", RenderPerPage: 16 * time.Second}
}

// SiteCatalogueEntry is one row of the thesis's Table 2.
type SiteCatalogueEntry struct {
	Name            string
	URL             string
	Focus           string
	RegisteredUsers int
}

// Table2 returns the SNS catalogue exactly as the thesis's Table 2
// lists it.
func Table2() []SiteCatalogueEntry {
	return []SiteCatalogueEntry{
		{Name: "MySpace", URL: "myspace.com", Focus: "Videos, movies, IM, news, blogs, chat", RegisteredUsers: 217_000_000},
		{Name: "Facebook", URL: "facebook.com", Focus: "Upload photoes, post videos, get news, tag friends", RegisteredUsers: 58_000_000},
		{Name: "Friendster", URL: "friendster.com", Focus: "Search for and connect with friends and classmates", RegisteredUsers: 50_000_000},
		{Name: "Classmates", URL: "classmates.com", Focus: "School, college, work and military groups", RegisteredUsers: 40_000_000},
		{Name: "Windows Live Spaces", URL: "spaces.live.com", Focus: "Blogging", RegisteredUsers: 40_000_000},
		{Name: "Broadcaster", URL: "broadcaster.com", Focus: "Video sharing and webcam chat", RegisteredUsers: 26_000_000},
		{Name: "Fotolog", URL: "fotolog.com", Focus: "338 million photoes around the world", RegisteredUsers: 12_695_007},
		{Name: "Flickr", URL: "flickr.com", Focus: "Photo sharing", RegisteredUsers: 4_000_000},
	}
}
