package snsbase

import (
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// testScale runs one modeled second per real millisecond. Timing tests
// must not use a more aggressive scale: Go timer granularity (~0.1 ms)
// would then inflate modeled measurements.
var testScale = vtime.DefaultScale()

func snsWorld(t *testing.T, site SiteProfile, handset HandsetProfile) (*Server, *Client, context.Context) {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(testScale))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	for _, id := range []ids.DeviceID{"datacenter", "handset"} {
		if err := env.Add(id, mobility.Static{At: geo.Pt(0, 0)}, radio.GPRS); err != nil {
			t.Fatal(err)
		}
	}
	server, err := NewServer(net, "datacenter", site)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Stop)
	client := NewClient(net, "handset", "datacenter", handset, site, "tester")
	t.Cleanup(client.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return server, client, ctx
}

func TestSearchJoinListProfile(t *testing.T) {
	server, client, ctx := snsWorld(t, Facebook(), NokiaN810())
	server.SeedGroup("England Football", "m1", "m2", "m3")
	server.SeedGroup("Knitting Circle", "k1")

	groups, err := client.SearchGroup(ctx, "football")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0] != "England Football" {
		t.Fatalf("search = %v", groups)
	}
	if err := client.JoinGroup(ctx, "England Football"); err != nil {
		t.Fatal(err)
	}
	members, err := client.MemberList(ctx, "England Football")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 { // 3 seeded + tester
		t.Fatalf("members = %v", members)
	}
	p, err := client.ViewProfile(ctx, "m1")
	if err != nil || p.Member != "m1" {
		t.Fatalf("profile = %+v, %v", p, err)
	}
}

func TestJoinUnknownGroup(t *testing.T) {
	_, client, ctx := snsWorld(t, Facebook(), NokiaN810())
	if err := client.JoinGroup(ctx, "nothing"); err == nil {
		t.Fatal("joining unknown group succeeded")
	}
}

func TestViewUnknownProfile(t *testing.T) {
	_, client, ctx := snsWorld(t, Hi5(), NokiaN95())
	if _, err := client.ViewProfile(ctx, "ghost"); err == nil {
		t.Fatal("viewing unknown profile succeeded")
	}
}

func TestSeedProfile(t *testing.T) {
	server, client, ctx := snsWorld(t, Facebook(), NokiaN810())
	server.SeedProfile(Profile{Member: "vip", FullName: "V. I. P.", About: "hello"})
	p, err := client.ViewProfile(ctx, "vip")
	if err != nil || p.FullName != "V. I. P." {
		t.Fatalf("profile = %+v, %v", p, err)
	}
}

// TestSearchSlowerOnN95 verifies the handset calibration produces the
// device ordering Table 8 shows: the same site is slower on the N95.
func TestSearchSlowerOnN95(t *testing.T) {
	measure := func(handset HandsetProfile) time.Duration {
		server, client, ctx := snsWorld(t, Facebook(), handset)
		server.SeedGroup("England Football", "m1")
		env := client.net.Environment()
		sw := vtime.NewStopwatch(env.Clock(), env.Scale())
		if _, err := client.SearchGroup(ctx, "football"); err != nil {
			t.Fatal(err)
		}
		return sw.Elapsed()
	}
	n810 := measure(NokiaN810())
	n95 := measure(NokiaN95())
	if n95 <= n810 {
		t.Fatalf("N95 search (%v) should be slower than N810 (%v)", n95, n810)
	}
	// Magnitudes: tens of modeled seconds, like Table 8's 58s/75s.
	if n810 < 20*time.Second || n810 > 120*time.Second {
		t.Fatalf("N810 search = %v, want tens of seconds", n810)
	}
}

// TestPageWeightDrivesTime verifies heavier pages cost more modeled
// time (the structural reason the SNS path is slow).
func TestPageWeightDrivesTime(t *testing.T) {
	light := SiteProfile{Name: "light", Search: PageSpec{Count: 1, Bytes: 5_000},
		Join: PageSpec{Count: 1, Bytes: 5_000}, List: PageSpec{Count: 1, Bytes: 5_000}, Profile: PageSpec{Count: 1, Bytes: 5_000}}
	heavy := light
	heavy.Name = "heavy"
	heavy.Search = PageSpec{Count: 1, Bytes: 200_000}

	measure := func(site SiteProfile) time.Duration {
		server, client, ctx := snsWorld(t, site, HandsetProfile{Name: "instant", RenderPerPage: 0})
		server.SeedGroup("g", "m")
		env := client.net.Environment()
		sw := vtime.NewStopwatch(env.Clock(), env.Scale())
		if _, err := client.SearchGroup(ctx, "g"); err != nil {
			t.Fatal(err)
		}
		return sw.Elapsed()
	}
	if lightT, heavyT := measure(light), measure(heavy); heavyT <= lightT {
		t.Fatalf("heavy search (%v) should exceed light (%v)", heavyT, lightT)
	}
}

func TestTable2Catalogue(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	if rows[0].Name != "MySpace" || rows[0].RegisteredUsers != 217_000_000 {
		t.Fatalf("first row = %+v, want MySpace with 217M users", rows[0])
	}
	// Sorted by registered users descending, as in the thesis.
	for i := 1; i < len(rows); i++ {
		if rows[i].RegisteredUsers > rows[i-1].RegisteredUsers {
			t.Fatalf("rows not in descending user order at %d", i)
		}
	}
	var facebook bool
	for _, r := range rows {
		if r.Name == "Facebook" && r.RegisteredUsers == 58_000_000 {
			facebook = true
		}
	}
	if !facebook {
		t.Fatal("Facebook row missing or wrong")
	}
}

func TestSiteProfiles(t *testing.T) {
	fb, hi5 := Facebook(), Hi5()
	if fb.Search.TotalBytes() <= hi5.Search.TotalBytes() {
		t.Error("Facebook search flow should be heavier than Hi5 (Table 8: FB search slower)")
	}
	if hi5.Join.TotalBytes() <= fb.Join.TotalBytes() {
		t.Error("Hi5 join flow should be heavier than Facebook (Table 8: Hi5 join slower)")
	}
	if NokiaN95().RenderPerPage <= NokiaN810().RenderPerPage {
		t.Error("N95 must render slower than N810")
	}
}

func TestPadHelper(t *testing.T) {
	if pad(100, 50) != "" {
		t.Error("pad should be empty when target below base")
	}
	if got := len(pad(100, 1000)); got != 900 {
		t.Errorf("pad length = %d, want 900", got)
	}
}

func TestCreateGroupManualFlow(t *testing.T) {
	_, client, ctx := snsWorld(t, Facebook(), NokiaN810())
	if err := client.CreateGroup(ctx, "Knitting Circle"); err != nil {
		t.Fatal(err)
	}
	groups, err := client.SearchGroup(ctx, "knitting")
	if err != nil || len(groups) != 1 || groups[0] != "Knitting Circle" {
		t.Fatalf("search = %v, %v", groups, err)
	}
	members, err := client.MemberList(ctx, "Knitting Circle")
	if err != nil || len(members) != 1 || members[0] != "tester" {
		t.Fatalf("members = %v, %v (creator should be the first member)", members, err)
	}
	if err := client.CreateGroup(ctx, "Knitting Circle"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := client.CreateGroup(ctx, ""); err == nil {
		t.Fatal("empty group name accepted")
	}
}
