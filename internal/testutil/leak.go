// Package testutil provides shared test infrastructure. Its centerpiece
// is a goroutine-leak checker: the simulator spawns a pump, a watchdog
// and server goroutines per connection, and a test that returns while
// any of them is still running has failed to tear its world down — the
// next test inherits the stragglers and timing becomes load-dependent,
// exactly what the determinism invariants forbid.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettleTimeout bounds how long VerifyTestMain waits for goroutines
// started by tests to finish after m.Run returns. Teardown is
// asynchronous in places (pumps notice closed channels, watchdogs
// observe dead links), so a short grace period is part of the contract.
const leakSettleTimeout = 5 * time.Second

// VerifyTestMain runs the package's tests and then fails the run if
// goroutines created during the tests are still alive. Wire it in as:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// The check snapshots runtime.Stack before the run and diffs against it
// afterwards, retrying until leakSettleTimeout so asynchronous teardown
// can finish. It only turns a passing run into a failure — a run that
// already failed keeps its exit code and skips the check.
func VerifyTestMain(m *testing.M) {
	baseline := goroutineIDs(stacks())
	code := m.Run()
	if code == 0 {
		if leaked := waitSettled(baseline); leaked != "" {
			fmt.Fprintf(os.Stderr, "testutil: goroutine leak after tests:\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// CheckNoLeaks fails t if goroutines outlive the function it is
// deferred from. Use it for single tests that need a tighter net than
// the package-level TestMain diff:
//
//	defer testutil.CheckNoLeaks(t, testutil.Snapshot())
func CheckNoLeaks(t *testing.T, baseline map[string]bool) {
	t.Helper()
	if leaked := waitSettled(baseline); leaked != "" {
		t.Errorf("goroutine leak:\n%s", leaked)
	}
}

// Snapshot captures the identities of the goroutines currently alive.
func Snapshot() map[string]bool {
	return goroutineIDs(stacks())
}

// waitSettled polls until no leaked goroutines remain or the settle
// timeout expires, returning the formatted stacks of the stragglers.
func waitSettled(baseline map[string]bool) string {
	deadline := time.Now().Add(leakSettleTimeout) //phvet:ignore walltime leak detection races real teardown, not simulated time
	for {
		leaked := leakedStacks(baseline)
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) { //phvet:ignore walltime
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(10 * time.Millisecond) //phvet:ignore walltime
	}
}

// leakedStacks returns the stack blocks of goroutines that are neither
// in the baseline nor recognizably part of the runtime/testing
// machinery.
func leakedStacks(baseline map[string]bool) []string {
	var leaked []string
	for _, g := range splitStacks(stacks()) {
		if baseline[goroutineID(g)] || benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// benignMarkers identify goroutines owned by the runtime, the testing
// framework, or the race detector rather than by code under test.
var benignMarkers = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"testutil.VerifyTestMain",
	"runtime.MHeap_Scavenger",
	"runtime.goexit",
	"runtime/trace.Start",
	"signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"time.goFunc", // expiring time.AfterFunc bodies
}

func benign(stack string) bool {
	// The first line is "goroutine N [state]:"; a goroutine that shows
	// nothing but runtime frames below it is the runtime's own.
	for _, m := range benignMarkers {
		if strings.Contains(stack, m) {
			return true
		}
	}
	return false
}

// stacks returns the full stack dump of every goroutine.
func stacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// splitStacks cuts a runtime.Stack(all=true) dump into per-goroutine
// blocks.
func splitStacks(dump []byte) []string {
	var blocks []string
	for _, b := range strings.Split(string(dump), "\n\n") {
		if strings.HasPrefix(b, "goroutine ") {
			blocks = append(blocks, b)
		}
	}
	return blocks
}

// goroutineID extracts the "goroutine N" prefix identifying one block.
func goroutineID(block string) string {
	if i := strings.Index(block, " ["); i > 0 {
		return block[:i]
	}
	return block
}

// goroutineIDs collects the IDs present in a dump.
func goroutineIDs(dump []byte) map[string]bool {
	ids := make(map[string]bool)
	for _, g := range splitStacks(dump) {
		ids[goroutineID(g)] = true
	}
	return ids
}
