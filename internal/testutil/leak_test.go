package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotSeesNewGoroutine(t *testing.T) {
	base := Snapshot()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started

	leaked := leakedStacks(base)
	if len(leaked) == 0 {
		t.Fatal("expected the parked goroutine to show up as a leak")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestSnapshotSeesNewGoroutine") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking goroutine:\n%s", strings.Join(leaked, "\n\n"))
	}

	close(stop)
	if msg := waitSettled(base); msg != "" {
		t.Errorf("goroutine still reported leaked after it exited:\n%s", msg)
	}
}

func TestBenignFiltersTestingFrames(t *testing.T) {
	dump := string(stacks())
	for _, g := range splitStacks([]byte(dump)) {
		if strings.Contains(g, "testing.tRunner(") && !benign(g) {
			t.Errorf("test-runner goroutine not classified benign:\n%s", g)
		}
	}
}

func TestGoroutineID(t *testing.T) {
	block := "goroutine 42 [chan receive]:\nmain.main()\n\t/x/main.go:1 +0x1"
	if got := goroutineID(block); got != "goroutine 42" {
		t.Errorf("goroutineID = %q, want %q", got, "goroutine 42")
	}
}

func TestWaitSettledGracePeriod(t *testing.T) {
	base := Snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// The goroutine exits well within the settle window, so no leak.
	if msg := waitSettled(base); msg != "" {
		t.Errorf("short-lived goroutine reported as leak:\n%s", msg)
	}
	<-done
}
