package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a Clock whose time only moves when Advance is called. It
// exists for tests that need deterministic positions and timeouts
// without sleeping.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	// seq numbers After registrations; equal-deadline waiters fire in
	// registration order instead of unstable heap order (see Less).
	seq uint64
}

// NewManual returns a manual clock starting at the given time.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock; it blocks until Advance moves time past the
// deadline.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	deadline := m.now.Add(d)
	if d <= 0 {
		//phvet:ignore lockguard ch is freshly made with capacity 1 and gets exactly this one send; it cannot block.
		ch <- m.now
		return ch
	}
	m.seq++
	heap.Push(&m.waiters, &waiter{deadline: deadline, seq: m.seq, ch: ch})
	return ch
}

// Waiters reports how many timers are currently pending. Tests use it
// to know a goroutine has registered its After before Advancing past
// the deadline.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// Advance moves the clock forward and fires every timer whose deadline
// has passed, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	for len(m.waiters) > 0 && !m.waiters[0].deadline.After(m.now) {
		w := heap.Pop(&m.waiters).(*waiter)
		//phvet:ignore lockguard every waiter channel has capacity 1 and receives exactly one send; it cannot block.
		w.ch <- m.now
	}
}

type waiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }

// Less orders waiters by deadline, then by registration sequence: two
// timers armed for the same instant must fire in the order they were
// armed, or an Advance past simultaneous deadlines wakes goroutines in
// whatever order the heap's internal swaps happen to leave — a replay
// hazard for anything observing wake order.
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)        { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

var _ Clock = (*Manual)(nil)
