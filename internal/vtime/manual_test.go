package vtime

import (
	"container/heap"
	"testing"
	"time"
)

func TestManualNowAdvance(t *testing.T) {
	start := time.Date(2008, 11, 14, 12, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(90 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Now after advance = %v", got)
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch1 := m.After(time.Second)
	ch2 := m.After(2 * time.Second)
	select {
	case <-ch1:
		t.Fatal("timer fired before Advance")
	default:
	}
	m.Advance(time.Second)
	select {
	case <-ch1:
	default:
		t.Fatal("1s timer should have fired")
	}
	select {
	case <-ch2:
		t.Fatal("2s timer fired early")
	default:
	}
	m.Advance(time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("2s timer should have fired")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-m.After(-time.Second):
	default:
		t.Fatal("After(-1s) should fire immediately")
	}
}

func TestManualSleepUnblocks(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(5 * time.Second)
		close(done)
	}()
	// Give the sleeper a moment to register.
	time.Sleep(time.Millisecond)
	m.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestManualManyTimersOneAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var chans []<-chan time.Time
	for i := 1; i <= 10; i++ {
		chans = append(chans, m.After(time.Duration(i)*time.Second))
	}
	m.Advance(time.Minute)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d did not fire", i+1)
		}
	}
}

// TestManualEqualDeadlinesWakeInRegistrationOrder pins the fix for the
// simultaneous-deadline wake order: waiters armed for the same instant
// used to pop in whatever order the heap's sift swaps left them (an
// artifact of insertion history, not a rule), so replays could wake the
// same goroutines in different orders. Waiters now carry a registration
// sequence and equal deadlines pop strictly in it.
func TestManualEqualDeadlinesWakeInRegistrationOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	const n = 64
	// Interleave two deadline cohorts so the heap has to do real work:
	// evens at +1s, odds at +2s, registered alternately.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			m.After(time.Second)
		} else {
			m.After(2 * time.Second)
		}
	}
	// Pop the heap the way Advance does and record the order. The test
	// is in-package on purpose: wake order is the property under test,
	// and channel receives in a black-box test would re-serialize it
	// through the goroutine scheduler.
	m.mu.Lock()
	var got []*waiter
	for len(m.waiters) > 0 {
		got = append(got, heap.Pop(&m.waiters).(*waiter))
	}
	m.mu.Unlock()
	if len(got) != n {
		t.Fatalf("popped %d waiters, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.deadline.After(b.deadline) {
			t.Fatalf("pop %d: deadline %v popped before %v", i, a.deadline, b.deadline)
		}
		if a.deadline.Equal(b.deadline) && a.seq >= b.seq {
			t.Fatalf("pop %d: equal deadlines popped out of registration order: seq %d before %d",
				i, a.seq, b.seq)
		}
	}
}

func TestManualConcurrentSleepers(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	const sleepers = 20
	done := make(chan int, sleepers)
	for i := 1; i <= sleepers; i++ {
		i := i
		go func() {
			m.Sleep(time.Duration(i) * time.Second)
			done <- i
		}()
	}
	// Let everyone register, then release all at once.
	time.Sleep(5 * time.Millisecond)
	m.Advance(time.Duration(sleepers) * time.Second)
	seen := make(map[int]bool)
	for i := 0; i < sleepers; i++ {
		select {
		case id := <-done:
			seen[id] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d/%d sleepers woke", len(seen), sleepers)
		}
	}
}
