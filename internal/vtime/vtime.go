// Package vtime provides the time abstraction used throughout the
// simulation: a Clock interface, a real clock, and a latency Scale that
// converts between "modeled" durations (the seconds the paper reports)
// and the real durations the simulator actually sleeps.
//
// The reproduction runs every protocol under real concurrency but with
// all network latencies shrunk by a constant factor, so a benchmark that
// models a 10-second Bluetooth inquiry completes in 10 ms of wall time.
// Measurements are taken in wall time and divided by the scale again, so
// results are reported on the paper's scale.
package vtime

import (
	"sync"
	"time"
)

// Clock abstracts time so tests can substitute a controllable source.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for at least d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Scale converts modeled durations to real durations. A Scale of 0.001
// runs one modeled second in one real millisecond. The zero value is not
// useful; use NewScale or DefaultScale.
type Scale struct {
	factor float64
}

// NewScale returns a Scale with the given real/modeled factor. Factors
// outside (0, 1e6] are clamped to that range.
func NewScale(factor float64) Scale {
	if factor <= 0 {
		factor = 1
	}
	if factor > 1e6 {
		factor = 1e6
	}
	return Scale{factor: factor}
}

// DefaultScale runs one modeled second in one real millisecond.
func DefaultScale() Scale { return NewScale(1e-3) }

// Identity leaves durations unchanged (modeled time == real time).
func Identity() Scale { return NewScale(1) }

// Factor reports the real/modeled conversion factor.
func (s Scale) Factor() float64 {
	if s.factor == 0 {
		return 1
	}
	return s.factor
}

// ToReal converts a modeled duration to the real duration to sleep.
func (s Scale) ToReal(modeled time.Duration) time.Duration {
	return time.Duration(float64(modeled) * s.Factor())
}

// ToModeled converts a measured real duration back to the modeled scale.
func (s Scale) ToModeled(real time.Duration) time.Duration {
	return time.Duration(float64(real) / s.Factor())
}

// Stopwatch measures elapsed wall time on a Clock and reports it on a
// modeled scale. The zero value uses the real clock and identity scale.
type Stopwatch struct {
	mu    sync.Mutex
	clock Clock
	scale Scale
	start time.Time
}

// NewStopwatch returns a started stopwatch.
func NewStopwatch(clock Clock, scale Scale) *Stopwatch {
	if clock == nil {
		clock = Real()
	}
	sw := &Stopwatch{clock: clock, scale: scale}
	sw.Restart()
	return sw
}

// Restart resets the start time to now.
func (w *Stopwatch) Restart() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.clock == nil {
		w.clock = Real()
	}
	w.start = w.clock.Now()
}

// Elapsed returns the modeled duration since the last restart.
func (w *Stopwatch) Elapsed() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.clock == nil {
		w.clock = Real()
	}
	if w.start.IsZero() {
		w.start = w.clock.Now()
	}
	return w.scale.ToModeled(w.clock.Now().Sub(w.start))
}
