package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealClockSleep(t *testing.T) {
	c := Real()
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 5ms", elapsed)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After(1ms) did not fire within 1s")
	}
}

func TestScaleRoundTrip(t *testing.T) {
	tests := []struct {
		name    string
		factor  float64
		modeled time.Duration
	}{
		{"default", 1e-3, 10 * time.Second},
		{"identity", 1, time.Second},
		{"tenth", 0.1, 500 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewScale(tt.factor)
			real := s.ToReal(tt.modeled)
			back := s.ToModeled(real)
			if diff := back - tt.modeled; diff < -time.Microsecond || diff > time.Microsecond {
				t.Fatalf("round trip %v -> %v -> %v", tt.modeled, real, back)
			}
		})
	}
}

func TestDefaultScaleShrinks(t *testing.T) {
	s := DefaultScale()
	if got := s.ToReal(time.Second); got != time.Millisecond {
		t.Fatalf("ToReal(1s) = %v, want 1ms", got)
	}
}

func TestNewScaleClamps(t *testing.T) {
	if f := NewScale(-5).Factor(); f != 1 {
		t.Errorf("negative factor clamped to %v, want 1", f)
	}
	if f := NewScale(0).Factor(); f != 1 {
		t.Errorf("zero factor clamped to %v, want 1", f)
	}
	if f := NewScale(1e12).Factor(); f != 1e6 {
		t.Errorf("huge factor clamped to %v, want 1e6", f)
	}
}

func TestZeroScaleFactorIsIdentity(t *testing.T) {
	var s Scale
	if s.Factor() != 1 {
		t.Fatalf("zero Scale factor = %v, want 1", s.Factor())
	}
	if got := s.ToReal(time.Second); got != time.Second {
		t.Fatalf("zero Scale ToReal(1s) = %v, want 1s", got)
	}
}

func TestScaleRoundTripProperty(t *testing.T) {
	prop := func(ms uint16) bool {
		s := DefaultScale()
		d := time.Duration(ms) * time.Millisecond
		back := s.ToModeled(s.ToReal(d))
		diff := back - d
		return diff >= -time.Microsecond && diff <= time.Microsecond
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatchElapsed(t *testing.T) {
	sw := NewStopwatch(Real(), DefaultScale())
	time.Sleep(2 * time.Millisecond)
	got := sw.Elapsed()
	if got < 2*time.Second {
		t.Fatalf("Elapsed() = %v, want >= 2 modeled seconds", got)
	}
}

func TestStopwatchRestart(t *testing.T) {
	sw := NewStopwatch(Real(), Identity())
	time.Sleep(2 * time.Millisecond)
	sw.Restart()
	if got := sw.Elapsed(); got > time.Millisecond {
		t.Fatalf("Elapsed() right after Restart = %v, want ~0", got)
	}
}

func TestStopwatchZeroValue(t *testing.T) {
	var sw Stopwatch
	if got := sw.Elapsed(); got < 0 {
		t.Fatalf("zero Stopwatch Elapsed() = %v, want >= 0", got)
	}
}
